// Package par simulates the paper's distributed-memory parallel
// evaluation (Section IV-D.3 / V-C): the full RT time step decomposed
// into sub-grids, processed by many MPI tasks across cluster nodes with
// two GPUs per node, each task running the framework in situ on its
// blocks with ghost data requested from the host application.
//
// Ranks are goroutines, each with its own simulated device and engine
// (the paper runs one framework instance per MPI task). Blocks are
// distributed round-robin; every block is ghost-grown so the gradient
// primitive computes correct values on sub-grid boundaries, and each
// rank writes its interior results into the assembled global field.
// Tests verify the assembled field is seam-free against a single-grid
// golden computation — the property Figure 7's rendering demonstrates.
package par

import (
	"fmt"
	"sync"

	"dfg"
	"dfg/internal/host"
	"dfg/internal/mesh"
	"dfg/internal/metrics"
	"dfg/internal/ocl"
	"dfg/internal/rtsim"
)

// Config describes a distributed run.
type Config struct {
	// Domain is the global mesh extent; Parts the block decomposition
	// (the paper: 3072^3 into 16 x 16 x 12 = 3072 blocks of
	// 192 x 192 x 256).
	Domain mesh.Dims
	Parts  [3]int
	// Ranks is the number of MPI tasks (paper: 256, two per node).
	Ranks int
	// GPUsPerNode controls rank->device mapping (paper: 2).
	GPUsPerNode int
	// Ghost is the stencil width to exchange (1 for grad3d).
	Ghost int
	// Expression is the derived field to compute (default Q-criterion).
	Expression string
	// Strategy is the execution strategy (default fusion).
	Strategy string
	// MemScale divides each GPU's memory (pair with scaled domains).
	MemScale int64
	// Seed generates the time step's data.
	Seed int64
}

// RankReport is one MPI task's accounting.
type RankReport struct {
	Rank      int
	Node      int
	Device    string
	Blocks    int
	Cells     int
	Profile   ocl.Profile
	PeakBytes int64
}

// Report summarizes a distributed run.
type Report struct {
	Ranks      []RankReport
	Blocks     int
	TotalCells int
	// Output is the assembled global derived field.
	Output []float32
}

// Imbalance returns the ratio of the busiest rank's modeled device time
// to the mean (1.0 = perfectly balanced). The paper's round-robin block
// distribution balances well because blocks are equal-sized.
func (r *Report) Imbalance() float64 {
	if len(r.Ranks) == 0 {
		return 1
	}
	var sum, max float64
	active := 0
	for _, rk := range r.Ranks {
		d := float64(rk.Profile.DeviceTime())
		sum += d
		if d > max {
			max = d
		}
		if rk.Blocks > 0 {
			active++
		}
	}
	if active == 0 || sum == 0 {
		return 1
	}
	return max / (sum / float64(active))
}

// Table renders the per-rank accounting of a distributed run.
func (r *Report) Table() *metrics.Table {
	t := metrics.NewTable("Distributed run: per-rank accounting",
		"Rank", "Node", "Device", "Blocks", "Cells", "Dev-W", "K-Exe", "Device Time", "Peak Memory")
	for _, rk := range r.Ranks {
		t.Add(
			fmt.Sprintf("%d", rk.Rank),
			fmt.Sprintf("%d", rk.Node),
			rk.Device,
			fmt.Sprintf("%d", rk.Blocks),
			fmt.Sprintf("%d", rk.Cells),
			fmt.Sprintf("%d", rk.Profile.Writes),
			fmt.Sprintf("%d", rk.Profile.Kernels),
			rk.Profile.DeviceTime().String(),
			fmt.Sprintf("%d B", rk.PeakBytes),
		)
	}
	return t
}

// Run executes the distributed evaluation and returns the assembled
// derived field plus per-rank reports.
func Run(cfg Config) (*Report, error) {
	if cfg.Expression == "" {
		cfg.Expression = dfg.QCriterionExpr
	}
	if cfg.Strategy == "" {
		cfg.Strategy = "fusion"
	}
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("par: need at least one rank")
	}
	if cfg.GPUsPerNode < 1 {
		cfg.GPUsPerNode = 2
	}
	if cfg.MemScale < 1 {
		cfg.MemScale = 1
	}

	m, err := mesh.NewUniform(cfg.Domain, 1, 1, 1)
	if err != nil {
		return nil, err
	}

	// The host application owns the data and fulfills the framework's
	// explicit ghost-data request.
	hostEng, err := dfg.New(dfg.Config{Device: dfg.CPU})
	if err != nil {
		return nil, err
	}
	app, err := host.NewApp(m, cfg.Seed, hostEng)
	if err != nil {
		return nil, err
	}
	blocks, err := app.GenerateGhostData(host.GhostRequest{Parts: cfg.Parts, Layers: cfg.Ghost})
	if err != nil {
		return nil, err
	}

	output := make([]float32, cfg.Domain.Cells())
	reports := make([]RankReport, cfg.Ranks)
	errs := make([]error, cfg.Ranks)

	var wg sync.WaitGroup
	for rank := 0; rank < cfg.Ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			reports[rank], errs[rank] = runRank(cfg, rank, blocks, output)
		}(rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	rep := &Report{Ranks: reports, Blocks: len(blocks), TotalCells: cfg.Domain.Cells(), Output: output}
	return rep, nil
}

// runRank processes one MPI task's round-robin share of the blocks on
// its own device, writing interior results into the shared output
// (regions are disjoint, so no synchronization is needed — exactly like
// ranks owning disjoint sub-grids).
func runRank(cfg Config, rank int, blocks []host.GhostBlock, output []float32) (RankReport, error) {
	dev := ocl.NewDevice(ocl.TeslaM2050Spec(cfg.MemScale))
	eng, err := dfg.NewOn(dev, cfg.Strategy)
	if err != nil {
		return RankReport{}, err
	}
	rep := RankReport{
		Rank:   rank,
		Node:   rank / cfg.GPUsPerNode,
		Device: fmt.Sprintf("%s #%d", dev.Name(), rank%cfg.GPUsPerNode),
	}

	var profile ocl.Profile
	for bi := rank; bi < len(blocks); bi += cfg.Ranks {
		b := blocks[bi]
		res, err := eng.EvalOnMesh(cfg.Expression, b.Field.Mesh, map[string][]float32{
			"u": b.Field.U, "v": b.Field.V, "w": b.Field.W,
		})
		if err != nil {
			return rep, fmt.Errorf("par: rank %d block %d: %w", rank, bi, err)
		}
		if res.Width != 1 {
			return rep, fmt.Errorf("par: rank %d: expression output width %d unsupported", rank, res.Width)
		}
		scatterInterior(output, cfg.Domain, b, res.Data)
		rep.Blocks++
		rep.Cells += b.Box.Cells()
		profile = profile.Add(res.Profile)
		if res.PeakDeviceBytes > rep.PeakBytes {
			rep.PeakBytes = res.PeakDeviceBytes
		}
	}
	rep.Profile = profile
	return rep, nil
}

// scatterInterior copies a block's interior cells from the ghost-grown
// result into the global output array.
func scatterInterior(global []float32, gd mesh.Dims, b host.GhostBlock, data []float32) {
	local := b.Box.LocalTo(b.Grown)
	ld := b.Grown.Dims()
	for k := local.Lo[2]; k < local.Hi[2]; k++ {
		gk := k + b.Grown.Lo[2]
		for j := local.Lo[1]; j < local.Hi[1]; j++ {
			gj := j + b.Grown.Lo[1]
			src := ld.Index(local.Lo[0], j, k)
			dst := gd.Index(b.Box.Lo[0], gj, gk)
			copy(global[dst:dst+local.Hi[0]-local.Lo[0]], data[src:src+local.Hi[0]-local.Lo[0]])
		}
	}
}

// GoldenField computes the same derived field on the undecomposed global
// mesh for seam verification. Only the paper's three expressions are
// supported.
func GoldenField(cfg Config) ([]float32, *rtsim.Field, error) {
	m, err := mesh.NewUniform(cfg.Domain, 1, 1, 1)
	if err != nil {
		return nil, nil, err
	}
	f := rtsim.Generate(m, rtsim.Options{Seed: cfg.Seed})
	eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "fusion"})
	if err != nil {
		return nil, nil, err
	}
	expr := cfg.Expression
	if expr == "" {
		expr = dfg.QCriterionExpr
	}
	res, err := eng.EvalOnMesh(expr, m, map[string][]float32{"u": f.U, "v": f.V, "w": f.W})
	if err != nil {
		return nil, nil, err
	}
	return res.Data, f, nil
}
