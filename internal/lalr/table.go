package lalr

import (
	"fmt"
	"sort"
	"strings"
)

// actType discriminates parse actions.
type actType int

const (
	actNone actType = iota
	actShift
	actReduce
	actAccept
	actErr // explicit error from a nonassoc conflict
)

// action is one ACTION table entry.
type action struct {
	typ    actType
	target int // shift: next state; reduce: production index
}

// Conflict records a parse-table conflict and how it was settled.
type Conflict struct {
	State    int
	Terminal string
	Kind     string // "shift/reduce" or "reduce/reduce"
	Resolved bool   // true if precedence declarations settled it
	Detail   string
}

// Table is a compiled LALR(1) parse table ready to drive Parse.
type Table struct {
	c       *compiled
	actions []map[string]action
	gotos   []map[string]int
	// Conflicts lists every conflict encountered during construction,
	// including those resolved by precedence declarations.
	Conflicts []Conflict
	numStates int
}

// States returns the number of automaton states.
func (t *Table) States() int { return t.numStates }

// Productions returns the grammar's productions (excluding the
// augmented start rule), for diagnostics.
func (t *Table) Productions() []*Prod { return t.c.prods[1:] }

// Build compiles the grammar into an LALR(1) parse table. Conflicts not
// resolved by precedence declarations make Build fail; the returned
// table (valid, with yacc-style default resolutions applied) accompanies
// the error so callers can inspect it.
func Build(g *Grammar) (*Table, error) {
	c, err := g.compile()
	if err != nil {
		return nil, err
	}
	a := buildAutomaton(c)
	las := computeLookaheads(a)

	t := &Table{c: c, numStates: len(a.states)}
	t.actions = make([]map[string]action, len(a.states))
	t.gotos = make([]map[string]int, len(a.states))

	// prodPrec resolves a production's precedence: the explicit %prec
	// terminal if given, else the last terminal of the right side.
	prodPrec := func(p *Prod) (prec, bool) {
		name := p.precTerm
		if name == "" {
			for i := len(p.Rhs) - 1; i >= 0; i-- {
				if c.terms[p.Rhs[i]] {
					name = p.Rhs[i]
					break
				}
			}
		}
		pr, ok := g.precs[name]
		return pr, ok
	}

	for si, st := range a.states {
		acts := make(map[string]action)
		gts := make(map[string]int)
		t.actions[si] = acts
		t.gotos[si] = gts

		// Shifts and gotos from the LR(0) transitions.
		for sym, target := range st.gotos {
			if c.nonterm[sym] {
				gts[sym] = target
			} else {
				acts[sym] = action{typ: actShift, target: target}
			}
		}

		// Reduces from the LR(1) closure of the kernel with its LALR
		// lookaheads (this also covers epsilon items, which are
		// non-kernel).
		var seed []laItem
		for _, k := range st.kernel {
			for la := range las[kernelRef{si, k}] {
				seed = append(seed, laItem{it: k, la: la})
			}
		}
		closed := c.closure1(seed)
		sort.Slice(closed, func(i, j int) bool {
			if closed[i].it.prod != closed[j].it.prod {
				return closed[i].it.prod < closed[j].it.prod
			}
			return closed[i].la < closed[j].la
		})
		for _, li := range closed {
			p := c.prods[li.it.prod]
			if li.it.dot != len(p.Rhs) {
				continue // not a reduce item
			}
			if li.it.prod == 0 {
				if li.la == EOF {
					acts[EOF] = action{typ: actAccept}
				}
				continue
			}
			red := action{typ: actReduce, target: li.it.prod}
			existing, ok := acts[li.la]
			if !ok {
				acts[li.la] = red
				continue
			}
			switch existing.typ {
			case actShift:
				// shift/reduce: try precedence.
				tPrec, tOK := g.precs[li.la]
				pPrec, pOK := prodPrec(p)
				conf := Conflict{State: si, Terminal: li.la, Kind: "shift/reduce",
					Detail: fmt.Sprintf("shift vs reduce %v", p)}
				if tOK && pOK {
					conf.Resolved = true
					switch {
					case pPrec.level > tPrec.level:
						acts[li.la] = red
					case pPrec.level < tPrec.level:
						// keep shift
					default:
						switch tPrec.assoc {
						case AssocLeft:
							acts[li.la] = red
						case AssocRight:
							// keep shift
						case AssocNonassoc:
							acts[li.la] = action{typ: actErr}
						}
					}
				}
				// Unresolved: keep the shift (yacc's default).
				t.Conflicts = append(t.Conflicts, conf)
			case actReduce:
				// reduce/reduce: earlier production wins (yacc default).
				conf := Conflict{State: si, Terminal: li.la, Kind: "reduce/reduce",
					Detail: fmt.Sprintf("%v vs %v", c.prods[existing.target], p)}
				if p2 := existing.target; li.it.prod < p2 {
					acts[li.la] = red
				}
				t.Conflicts = append(t.Conflicts, conf)
			case actAccept, actErr:
				// Accept is only on EOF for the start rule; ignore.
			}
		}
	}

	var unresolved []string
	for _, cf := range t.Conflicts {
		if !cf.Resolved {
			unresolved = append(unresolved, fmt.Sprintf("state %d on %q: %s (%s)", cf.State, cf.Terminal, cf.Kind, cf.Detail))
		}
	}
	if len(unresolved) > 0 {
		return t, fmt.Errorf("lalr: %d unresolved conflict(s):\n  %s", len(unresolved), strings.Join(unresolved, "\n  "))
	}
	return t, nil
}
