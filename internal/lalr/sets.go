package lalr

// computeFirst computes nullability and FIRST sets for all symbols by
// fixpoint iteration. FIRST of a terminal is itself; FIRST of a
// nonterminal is the union over its productions of the FIRST of their
// right sides.
func (c *compiled) computeFirst() {
	c.nullable = make(map[string]bool)
	c.first = make(map[string]map[string]bool)
	for t := range c.terms {
		c.first[t] = map[string]bool{t: true}
	}
	for nt := range c.nonterm {
		c.first[nt] = make(map[string]bool)
	}

	for changed := true; changed; {
		changed = false
		for _, p := range c.prods {
			// Nullability: every RHS symbol nullable.
			allNullable := true
			for _, s := range p.Rhs {
				if !c.nullable[s] {
					allNullable = false
					break
				}
			}
			if allNullable && !c.nullable[p.Lhs] {
				c.nullable[p.Lhs] = true
				changed = true
			}
			// FIRST: add FIRST of each prefix symbol while the prefix
			// before it is nullable.
			dst := c.first[p.Lhs]
			for _, s := range p.Rhs {
				for t := range c.first[s] {
					if !dst[t] {
						dst[t] = true
						changed = true
					}
				}
				if !c.nullable[s] {
					break
				}
			}
		}
	}
}

// firstOfSeq computes FIRST of a symbol sequence followed by a lookahead
// terminal: the terminals that can begin seq, plus la if seq is
// nullable. Used by the LR(1) closure during lookahead computation.
func (c *compiled) firstOfSeq(seq []string, la string) map[string]bool {
	out := make(map[string]bool)
	nullable := true
	for _, s := range seq {
		for t := range c.first[s] {
			out[t] = true
		}
		if !c.nullable[s] {
			nullable = false
			break
		}
	}
	if nullable {
		out[la] = true
	}
	return out
}
