package lalr

import (
	"errors"
	"strings"
	"testing"
)

// tok makes a test token.
func tok(sym string, val any) Token { return Token{Sym: sym, Text: sym, Val: val, Line: 1} }

// lexNums builds a token stream from a tiny arithmetic string where
// every digit is a num token and everything else is an operator symbol.
func lexNums(s string) *SliceLexer {
	var toks []Token
	col := 0
	for _, r := range s {
		col++
		t := Token{Text: string(r), Line: 1, Col: col}
		switch {
		case r >= '0' && r <= '9':
			t.Sym = "num"
			t.Val = float64(r - '0')
		case r == ' ':
			continue
		default:
			t.Sym = string(r)
		}
		toks = append(toks, t)
	}
	return &SliceLexer{Tokens: toks}
}

// binop builds the usual arithmetic action.
func binop(f func(a, b float64) float64) func([]any) any {
	return func(v []any) any { return f(v[0].(float64), v[2].(float64)) }
}

func num(v []any) any { return v[0].(Token).Val }

// unambiguousCalc is the textbook expr/term/factor grammar.
func unambiguousCalc(t *testing.T) *Table {
	t.Helper()
	g := NewGrammar("expr")
	g.Rule("expr : expr + term", binop(func(a, b float64) float64 { return a + b }))
	g.Rule("expr : expr - term", binop(func(a, b float64) float64 { return a - b }))
	g.Rule("expr : term", nil)
	g.Rule("term : term * factor", binop(func(a, b float64) float64 { return a * b }))
	g.Rule("term : term / factor", binop(func(a, b float64) float64 { return a / b }))
	g.Rule("term : factor", nil)
	g.Rule("factor : ( expr )", func(v []any) any { return v[1] })
	g.Rule("factor : num", num)
	tbl, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Conflicts) != 0 {
		t.Fatalf("unambiguous grammar should have no conflicts: %v", tbl.Conflicts)
	}
	return tbl
}

func evalWith(t *testing.T, tbl *Table, input string) float64 {
	t.Helper()
	v, err := tbl.Parse(lexNums(input))
	if err != nil {
		t.Fatalf("parse %q: %v", input, err)
	}
	return v.(float64)
}

func TestUnambiguousCalculator(t *testing.T) {
	tbl := unambiguousCalc(t)
	cases := map[string]float64{
		"1":           1,
		"1+2":         3,
		"2*3+4":       10,
		"2+3*4":       14,
		"(2+3)*4":     20,
		"8-2-3":       3, // left associative
		"8/2/2":       2,
		"1+2*(3+4)-5": 10,
	}
	for in, want := range cases {
		if got := evalWith(t, tbl, in); got != want {
			t.Errorf("%q = %v, want %v", in, got, want)
		}
	}
}

func TestAmbiguousGrammarResolvedByPrecedence(t *testing.T) {
	// The yacc-classic ambiguous grammar: E : E+E | E-E | E*E | E/E.
	// Precedence declarations must resolve every shift/reduce conflict.
	g := NewGrammar("e")
	g.Left("+", "-")
	g.Left("*", "/")
	g.Rule("e : e + e", binop(func(a, b float64) float64 { return a + b }))
	g.Rule("e : e - e", binop(func(a, b float64) float64 { return a - b }))
	g.Rule("e : e * e", binop(func(a, b float64) float64 { return a * b }))
	g.Rule("e : e / e", binop(func(a, b float64) float64 { return a / b }))
	g.Rule("e : ( e )", func(v []any) any { return v[1] })
	g.Rule("e : num", num)
	tbl, err := Build(g)
	if err != nil {
		t.Fatalf("precedence should resolve all conflicts: %v", err)
	}
	if len(tbl.Conflicts) == 0 {
		t.Fatal("the ambiguous grammar must report (resolved) conflicts")
	}
	for _, c := range tbl.Conflicts {
		if !c.Resolved {
			t.Fatalf("unresolved conflict remained: %+v", c)
		}
	}
	cases := map[string]float64{
		"2+3*4": 14, // * binds tighter
		"2*3+4": 10,
		"2-3-4": -5, // left assoc
		"8/2*2": 8,
	}
	for in, want := range cases {
		if got := evalWith(t, tbl, in); got != want {
			t.Errorf("%q = %v, want %v", in, got, want)
		}
	}
}

func TestRightAssociativity(t *testing.T) {
	g := NewGrammar("e")
	g.Right("^")
	g.Rule("e : e ^ e", binop(func(a, b float64) float64 {
		r := 1.0
		for i := 0; i < int(b); i++ {
			r *= a
		}
		return r
	}))
	g.Rule("e : num", num)
	tbl, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	// Right associative: 2^3^2 = 2^(3^2) = 512, not (2^3)^2 = 64.
	if got := evalWith(t, tbl, "2^3^2"); got != 512 {
		t.Fatalf("2^3^2 = %v, want 512 (right assoc)", got)
	}
}

func TestNonassoc(t *testing.T) {
	g := NewGrammar("e")
	g.Nonassoc("<")
	g.Rule("e : e < e", func(v []any) any { return v[0] })
	g.Rule("e : num", num)
	tbl, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Parse(lexNums("1<2")); err != nil {
		t.Fatalf("single comparison must parse: %v", err)
	}
	if _, err := tbl.Parse(lexNums("1<2<3")); err == nil {
		t.Fatal("chained nonassoc comparison must be a syntax error")
	}
}

func TestUnresolvedConflictFailsBuild(t *testing.T) {
	// Ambiguous grammar with no precedence: Build must fail but still
	// return a usable table with yacc default resolutions.
	g := NewGrammar("e")
	g.Rule("e : e + e", binop(func(a, b float64) float64 { return a + b }))
	g.Rule("e : num", num)
	tbl, err := Build(g)
	if err == nil {
		t.Fatal("unresolved shift/reduce must fail Build")
	}
	if tbl == nil {
		t.Fatal("Build must return the default-resolved table alongside the error")
	}
	// Default resolution is shift -> right associativity.
	v, perr := tbl.Parse(lexNums("1+2+3"))
	if perr != nil || v.(float64) != 6 {
		t.Fatalf("default-resolved parse: %v, %v", v, perr)
	}
}

func TestReduceReduceConflict(t *testing.T) {
	g := NewGrammar("s")
	g.Rule("s : a", nil)
	g.Rule("s : b", nil)
	g.Rule("a : x", func(v []any) any { return "a" })
	g.Rule("b : x", func(v []any) any { return "b" })
	tbl, err := Build(g)
	if err == nil || !strings.Contains(err.Error(), "reduce/reduce") {
		t.Fatalf("want reduce/reduce failure, got %v", err)
	}
	// yacc default: earlier production wins.
	v, perr := tbl.Parse(&SliceLexer{Tokens: []Token{tok("x", nil)}})
	if perr != nil || v != "a" {
		t.Fatalf("default resolution should pick the earlier rule: %v, %v", v, perr)
	}
}

func TestEpsilonProductions(t *testing.T) {
	// list : list item | <empty> — counts items.
	g := NewGrammar("list")
	g.Rule("list : list item", func(v []any) any { return v[0].(int) + 1 })
	g.Rule("list :", func(v []any) any { return 0 })
	g.Rule("item : x", nil)
	tbl, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= 5; n++ {
		toks := make([]Token, n)
		for i := range toks {
			toks[i] = tok("x", nil)
		}
		v, err := tbl.Parse(&SliceLexer{Tokens: toks})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if v.(int) != n {
			t.Fatalf("n=%d: counted %v", n, v)
		}
	}
}

// TestLALRButNotSLR uses the textbook grammar that SLR(1) cannot handle
// (it has a shift/reduce conflict on "=" under SLR) but LALR(1) can:
//
//	S -> L = R | R;  L -> * R | id;  R -> L
//
// Building it without conflicts proves the generator computes genuine
// LALR lookaheads rather than SLR FOLLOW sets.
func TestLALRButNotSLR(t *testing.T) {
	g := NewGrammar("s")
	g.Rule("s : l = r", func(v []any) any { return "assign" })
	g.Rule("s : r", func(v []any) any { return "rvalue" })
	g.Rule("l : * r", nil)
	g.Rule("l : id", nil)
	g.Rule("r : l", nil)
	tbl, err := Build(g)
	if err != nil {
		t.Fatalf("grammar is LALR(1); Build failed: %v", err)
	}
	if len(tbl.Conflicts) != 0 {
		t.Fatalf("LALR(1) grammar must build conflict-free, got %v", tbl.Conflicts)
	}
	v, err := tbl.Parse(&SliceLexer{Tokens: []Token{tok("*", nil), tok("id", nil), tok("=", nil), tok("id", nil)}})
	if err != nil || v != "assign" {
		t.Fatalf("*id = id: %v, %v", v, err)
	}
	v, err = tbl.Parse(&SliceLexer{Tokens: []Token{tok("id", nil)}})
	if err != nil || v != "rvalue" {
		t.Fatalf("id: %v, %v", v, err)
	}
}

func TestParseErrors(t *testing.T) {
	tbl := unambiguousCalc(t)

	_, err := tbl.Parse(lexNums("1+"))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Token.Sym != EOF {
		t.Fatalf("failing token should be EOF, got %q", pe.Token.Sym)
	}
	if len(pe.Expected) == 0 {
		t.Fatal("parse error should list expected terminals")
	}
	if !strings.Contains(pe.Error(), "end of input") {
		t.Fatalf("EOF error message: %q", pe.Error())
	}

	_, err = tbl.Parse(lexNums("1 2"))
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Token.Col != 3 {
		t.Fatalf("error column = %d, want 3", pe.Token.Col)
	}
	if !strings.Contains(pe.Error(), "line 1") {
		t.Fatalf("error message should carry the location: %q", pe.Error())
	}
}

func TestUnknownTerminalRejected(t *testing.T) {
	tbl := unambiguousCalc(t)
	_, err := tbl.Parse(&SliceLexer{Tokens: []Token{tok("WAT", nil)}})
	if err == nil || !strings.Contains(err.Error(), "unknown terminal") {
		t.Fatalf("unknown terminal must be rejected: %v", err)
	}
}

func TestGrammarValidation(t *testing.T) {
	g := NewGrammar("s")
	if _, err := Build(g); err == nil {
		t.Error("empty grammar must fail")
	}

	g = NewGrammar("s")
	g.Rule("nonsense", nil) // malformed
	g.Rule("s : x", nil)
	if _, err := Build(g); err == nil {
		t.Error("malformed rule must fail")
	}

	g = NewGrammar("s")
	g.Rule("t : x", nil) // start symbol never defined
	if _, err := Build(g); err == nil {
		t.Error("missing start symbol must fail")
	}

	g = NewGrammar("s")
	g.Left("+")
	g.Left("+") // duplicate precedence declaration
	g.Rule("s : x", nil)
	if _, err := Build(g); err == nil {
		t.Error("duplicate precedence must fail")
	}

	g = NewGrammar("s")
	g.Rule("s : "+EOF, nil)
	if _, err := Build(g); err == nil {
		t.Error("reserved EOF symbol in a rule must fail")
	}

	g = NewGrammar("s")
	g.Rule("lhs with spaces : x", nil)
	if _, err := Build(g); err == nil {
		t.Error("multi-word LHS must fail")
	}
}

func TestProdString(t *testing.T) {
	p := &Prod{Lhs: "e", Rhs: []string{"e", "+", "t"}}
	if p.String() != "e -> e + t" {
		t.Fatalf("prod string: %q", p.String())
	}
	if (&Prod{Lhs: "e"}).String() != "e -> <empty>" {
		t.Fatal("empty prod string wrong")
	}
}

func TestTableIntrospection(t *testing.T) {
	tbl := unambiguousCalc(t)
	if tbl.States() < 10 {
		t.Fatalf("calculator automaton suspiciously small: %d states", tbl.States())
	}
	if len(tbl.Productions()) != 8 {
		t.Fatalf("want 8 productions, got %d", len(tbl.Productions()))
	}
}

func TestDefaultActionPassesFirstValue(t *testing.T) {
	g := NewGrammar("s")
	g.Rule("s : num", nil) // nil action: value of first symbol (the Token)
	tbl, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	v, err := tbl.Parse(lexNums("7"))
	if err != nil {
		t.Fatal(err)
	}
	if tokv, ok := v.(Token); !ok || tokv.Val.(float64) != 7 {
		t.Fatalf("default action should pass through the token, got %#v", v)
	}
}

func TestReport(t *testing.T) {
	tbl := unambiguousCalc(t)
	rep := tbl.Report()
	for _, frag := range []string{
		"Grammar",
		"Rule 0   $accept -> expr",
		"Rule 1   expr -> expr + term",
		"Terminals:",
		"Nonterminals:",
		"state 0",
		"shift, go to state",
		"reduce using rule",
		"accept",
		"go to state",
	} {
		if !strings.Contains(rep, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
	if strings.Contains(rep, "Conflicts") {
		t.Error("unambiguous grammar must not report conflicts")
	}

	// A grammar with precedence-resolved conflicts reports them.
	g := NewGrammar("e")
	g.Left("+")
	g.Rule("e : e + e", nil)
	g.Rule("e : num", nil)
	tbl2, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl2.Report(), "resolved by precedence") {
		t.Error("report should show resolved conflicts")
	}
}
