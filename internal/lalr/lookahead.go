package lalr

// This file computes LALR(1) lookaheads for the LR(0) automaton using
// the Dragon Book's Algorithm 4.63: for every kernel item, discover
// which lookaheads are generated spontaneously and which propagate from
// other kernel items, then iterate propagation to a fixpoint.

// laItem is an LR(1) item used transiently during closure.
type laItem struct {
	it item
	la string
}

// closure1 computes the LR(1) closure of a set of lookahead items.
func (c *compiled) closure1(seed []laItem) []laItem {
	seen := make(map[laItem]bool, len(seed))
	var out, stack []laItem
	for _, li := range seed {
		if !seen[li] {
			seen[li] = true
			out = append(out, li)
			stack = append(stack, li)
		}
	}
	for len(stack) > 0 {
		li := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sym := c.symbolAfterDot(li.it)
		if !c.nonterm[sym] {
			continue
		}
		p := c.prods[li.it.prod]
		beta := p.Rhs[li.it.dot+1:]
		for t := range c.firstOfSeq(beta, li.la) {
			for _, pi := range c.byLhs[sym] {
				ni := laItem{it: item{prod: pi, dot: 0}, la: t}
				if !seen[ni] {
					seen[ni] = true
					out = append(out, ni)
					stack = append(stack, ni)
				}
			}
		}
	}
	return out
}

// kernelRef addresses one kernel item within one state.
type kernelRef struct {
	state int
	it    item
}

// lookaheads maps every kernel item of every state to its LALR(1)
// lookahead set.
type lookaheads map[kernelRef]map[string]bool

// computeLookaheads runs spontaneous generation and propagation.
func computeLookaheads(a *automaton) lookaheads {
	c := a.c
	las := make(lookaheads)
	propagate := make(map[kernelRef][]kernelRef)

	addLA := func(ref kernelRef, t string) bool {
		set := las[ref]
		if set == nil {
			set = make(map[string]bool)
			las[ref] = set
		}
		if set[t] {
			return false
		}
		set[t] = true
		return true
	}

	// The augmented start item sees end-of-input.
	addLA(kernelRef{0, item{prod: 0, dot: 0}}, EOF)

	// Discover spontaneous lookaheads and propagation links.
	for si, st := range a.states {
		for _, k := range st.kernel {
			from := kernelRef{si, k}
			for _, li := range c.closure1([]laItem{{it: k, la: hash}}) {
				sym := c.symbolAfterDot(li.it)
				if sym == "" {
					continue
				}
				target := kernelRef{st.gotos[sym], item{prod: li.it.prod, dot: li.it.dot + 1}}
				if li.la == hash {
					propagate[from] = append(propagate[from], target)
				} else {
					addLA(target, li.la)
				}
			}
		}
	}

	// Propagate to fixpoint.
	for changed := true; changed; {
		changed = false
		for from, targets := range propagate {
			for t := range las[from] {
				for _, to := range targets {
					if addLA(to, t) {
						changed = true
					}
				}
			}
		}
	}
	return las
}
