package lalr

import (
	"fmt"
	"sort"
	"strings"
)

// Token is one lexeme handed to the parser. Sym must be a grammar
// terminal (or EOF); Text and position fields feed error messages; Val
// carries an optional pre-parsed semantic value (e.g. a float for a
// NUMBER token).
type Token struct {
	Sym  string
	Text string
	Pos  int // byte offset in the input
	Line int // 1-based line number
	Col  int // 1-based column
	Val  any
}

// Lexer produces the token stream. Next returns EOF-symbol tokens
// forever once input is exhausted.
type Lexer interface {
	Next() (Token, error)
}

// ParseError is a syntax error with location and expectation context.
type ParseError struct {
	Token    Token
	Expected []string // terminals acceptable in the failing state
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	where := e.Token.Text
	if e.Token.Sym == EOF {
		where = "end of input"
	} else {
		where = fmt.Sprintf("%q", where)
	}
	msg := fmt.Sprintf("syntax error at line %d, column %d: unexpected %s", e.Token.Line, e.Token.Col, where)
	if len(e.Expected) > 0 {
		msg += fmt.Sprintf(" (expected %s)", strings.Join(e.Expected, ", "))
	}
	return msg
}

// Parse runs the table-driven shift-reduce parser over the lexer's
// tokens and returns the start symbol's semantic value.
func (t *Table) Parse(lx Lexer) (any, error) {
	states := []int{0}
	values := []any{nil}

	tok, err := lx.Next()
	if err != nil {
		return nil, err
	}
	for {
		s := states[len(states)-1]
		act, ok := t.actions[s][tok.Sym]
		if !ok || act.typ == actErr || act.typ == actNone {
			if _, known := t.c.terms[tok.Sym]; !known && tok.Sym != EOF {
				return nil, fmt.Errorf("lalr: lexer produced unknown terminal %q at line %d", tok.Sym, tok.Line)
			}
			return nil, &ParseError{Token: tok, Expected: t.expected(s)}
		}
		switch act.typ {
		case actShift:
			states = append(states, act.target)
			values = append(values, tok)
			if tok, err = lx.Next(); err != nil {
				return nil, err
			}
		case actReduce:
			p := t.c.prods[act.target]
			n := len(p.Rhs)
			args := make([]any, n)
			copy(args, values[len(values)-n:])
			states = states[:len(states)-n]
			values = values[:len(values)-n]

			var v any
			if p.Action != nil {
				v = p.Action(args)
			} else if n > 0 {
				v = args[0]
			}
			top := states[len(states)-1]
			next, ok := t.gotos[top][p.Lhs]
			if !ok {
				return nil, fmt.Errorf("lalr: internal error: no goto from state %d on %q", top, p.Lhs)
			}
			states = append(states, next)
			values = append(values, v)
		case actAccept:
			return values[len(values)-1], nil
		}
	}
}

// expected lists the terminals with actions in a state, sorted, for
// error messages.
func (t *Table) expected(state int) []string {
	var out []string
	for term, a := range t.actions[state] {
		if a.typ == actShift || a.typ == actReduce || a.typ == actAccept {
			out = append(out, term)
		}
	}
	sort.Strings(out)
	return out
}

// SliceLexer adapts a pre-tokenized slice to the Lexer interface,
// appending EOF; useful in tests.
type SliceLexer struct {
	Tokens []Token
	i      int
}

// Next returns the next token, then EOF forever.
func (s *SliceLexer) Next() (Token, error) {
	if s.i < len(s.Tokens) {
		t := s.Tokens[s.i]
		s.i++
		return t, nil
	}
	return Token{Sym: EOF}, nil
}
