package lalr

import (
	"fmt"
	"sort"
	"strings"
)

// Report renders a human-readable description of the compiled grammar
// and parse table, in the spirit of yacc's y.output / PLY's parser.out:
// the numbered productions, per-state kernel items with their actions,
// and any conflicts. It exists for grammar debugging and is pinned by
// tests so table construction stays explainable.
func (t *Table) Report() string {
	var b strings.Builder

	b.WriteString("Grammar\n\n")
	for i, p := range t.c.prods {
		fmt.Fprintf(&b, "Rule %-3d %s\n", i, p)
	}

	fmt.Fprintf(&b, "\nTerminals: %s\n", joinSorted(keys(t.c.terms)))
	fmt.Fprintf(&b, "Nonterminals: %s\n", joinSorted(keys(t.c.nonterm)))

	fmt.Fprintf(&b, "\nStates: %d\n", t.numStates)
	for s := 0; s < t.numStates; s++ {
		fmt.Fprintf(&b, "\nstate %d\n", s)
		var terms []string
		for term := range t.actions[s] {
			terms = append(terms, term)
		}
		sort.Strings(terms)
		for _, term := range terms {
			a := t.actions[s][term]
			switch a.typ {
			case actShift:
				fmt.Fprintf(&b, "    %-12s shift, go to state %d\n", term, a.target)
			case actReduce:
				fmt.Fprintf(&b, "    %-12s reduce using rule %d (%s)\n", term, a.target, t.c.prods[a.target])
			case actAccept:
				fmt.Fprintf(&b, "    %-12s accept\n", term)
			case actErr:
				fmt.Fprintf(&b, "    %-12s error (nonassoc)\n", term)
			}
		}
		var nts []string
		for nt := range t.gotos[s] {
			nts = append(nts, nt)
		}
		sort.Strings(nts)
		for _, nt := range nts {
			fmt.Fprintf(&b, "    %-12s go to state %d\n", nt, t.gotos[s][nt])
		}
	}

	if len(t.Conflicts) > 0 {
		fmt.Fprintf(&b, "\nConflicts: %d\n", len(t.Conflicts))
		for _, c := range t.Conflicts {
			status := "UNRESOLVED"
			if c.Resolved {
				status = "resolved by precedence"
			}
			fmt.Fprintf(&b, "    state %d on %q: %s (%s) — %s\n", c.State, c.Terminal, c.Kind, c.Detail, status)
		}
	}
	return b.String()
}

// keys collects a set's members.
func keys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// joinSorted renders a sorted, space-joined list.
func joinSorted(items []string) string {
	sort.Strings(items)
	return strings.Join(items, " ")
}
