// Package lalr is a from-scratch LALR(1) parser generator and runtime,
// modelled on PLY (Python Lex-Yacc), the tool the paper builds its
// expression parser with. PLY in turn follows the classic yacc design:
// a grammar of string productions with semantic actions, operator
// precedence declarations to resolve ambiguity, LR(0) automaton
// construction, LALR(1) lookahead computation (the Dragon Book's
// spontaneous-generation/propagation algorithm), and a table-driven
// shift-reduce parser.
//
// The generator is general-purpose: internal/expr defines the paper's
// expression grammar on top of it, and the package tests exercise it on
// classic grammars (ambiguous expression grammars resolved by
// precedence, nullable productions, conflict detection).
package lalr

import (
	"fmt"
	"strings"
)

// EOF is the reserved end-of-input terminal. Lexers must return a token
// with this symbol when input is exhausted.
const EOF = "$end"

// epsilon-sentinel used internally for lookahead propagation.
const hash = "#"

// Assoc is an operator associativity class.
type Assoc int

const (
	// AssocLeft resolves an equal-precedence shift/reduce conflict by
	// reducing (left-associative operators).
	AssocLeft Assoc = iota
	// AssocRight resolves by shifting (right-associative operators).
	AssocRight
	// AssocNonassoc makes the conflicting input a syntax error.
	AssocNonassoc
)

// prec is one terminal's precedence entry.
type prec struct {
	level int // higher binds tighter
	assoc Assoc
}

// Prod is one grammar production LHS -> RHS with a semantic action.
type Prod struct {
	Lhs string
	Rhs []string
	// Action computes the production's semantic value from its
	// children's values (one per RHS symbol; terminals yield Token).
	// A nil action yields the first child's value (or nil if empty).
	Action func(vals []any) any
	// precTerm overrides the production's precedence (yacc's %prec).
	precTerm string
}

// String renders the production in "lhs -> rhs" form.
func (p *Prod) String() string {
	if len(p.Rhs) == 0 {
		return p.Lhs + " -> <empty>"
	}
	return p.Lhs + " -> " + strings.Join(p.Rhs, " ")
}

// Grammar accumulates productions and precedence declarations.
type Grammar struct {
	start     string
	prods     []*Prod
	precs     map[string]prec
	precLevel int
	errs      []error
}

// NewGrammar creates a grammar with the given start symbol.
func NewGrammar(start string) *Grammar {
	return &Grammar{start: start, precs: make(map[string]prec)}
}

// declarePrec registers one precedence level for the given terminals.
func (g *Grammar) declarePrec(a Assoc, terms []string) {
	g.precLevel++
	for _, t := range terms {
		if _, dup := g.precs[t]; dup {
			g.errs = append(g.errs, fmt.Errorf("lalr: terminal %q declared in two precedence levels", t))
			continue
		}
		g.precs[t] = prec{level: g.precLevel, assoc: a}
	}
}

// Left declares left-associative terminals at the next (tighter)
// precedence level, like yacc's %left.
func (g *Grammar) Left(terms ...string) { g.declarePrec(AssocLeft, terms) }

// Right declares right-associative terminals (%right).
func (g *Grammar) Right(terms ...string) { g.declarePrec(AssocRight, terms) }

// Nonassoc declares non-associative terminals (%nonassoc).
func (g *Grammar) Nonassoc(terms ...string) { g.declarePrec(AssocNonassoc, terms) }

// Rule adds a production written as "lhs : sym sym ..." (or "lhs -> ...");
// an empty right side declares an epsilon production. The action receives
// one value per RHS symbol.
func (g *Grammar) Rule(rule string, action func(vals []any) any) {
	g.RulePrec(rule, "", action)
}

// RulePrec is Rule with an explicit %prec terminal override.
func (g *Grammar) RulePrec(rule, precTerm string, action func(vals []any) any) {
	lhs, rhs, err := splitRule(rule)
	if err != nil {
		g.errs = append(g.errs, err)
		return
	}
	g.prods = append(g.prods, &Prod{Lhs: lhs, Rhs: rhs, Action: action, precTerm: precTerm})
}

// splitRule parses "lhs : a b c" / "lhs -> a b c".
func splitRule(rule string) (string, []string, error) {
	sep := ":"
	if strings.Contains(rule, "->") {
		sep = "->"
	}
	parts := strings.SplitN(rule, sep, 2)
	if len(parts) != 2 {
		return "", nil, fmt.Errorf("lalr: malformed rule %q (want \"lhs %s rhs\")", rule, sep)
	}
	lhs := strings.TrimSpace(parts[0])
	if lhs == "" || strings.ContainsAny(lhs, " \t") {
		return "", nil, fmt.Errorf("lalr: malformed rule %q: bad left-hand side", rule)
	}
	rhs := strings.Fields(parts[1])
	return lhs, rhs, nil
}

// compiled is the analyzed grammar: interned productions, symbol
// classification and FIRST sets.
type compiled struct {
	g        *Grammar
	prods    []*Prod // prods[0] is the augmented start production
	byLhs    map[string][]int
	nonterm  map[string]bool
	terms    map[string]bool
	nullable map[string]bool
	first    map[string]map[string]bool
}

// compile validates and analyzes the grammar.
func (g *Grammar) compile() (*compiled, error) {
	if len(g.errs) > 0 {
		return nil, g.errs[0]
	}
	if len(g.prods) == 0 {
		return nil, fmt.Errorf("lalr: grammar has no productions")
	}

	c := &compiled{
		g:       g,
		byLhs:   make(map[string][]int),
		nonterm: make(map[string]bool),
		terms:   make(map[string]bool),
	}
	// Augment: prods[0] = $accept -> start.
	c.prods = append([]*Prod{{Lhs: "$accept", Rhs: []string{g.start}}}, g.prods...)
	for _, p := range c.prods {
		c.nonterm[p.Lhs] = true
	}
	if !c.nonterm[g.start] {
		return nil, fmt.Errorf("lalr: start symbol %q has no productions", g.start)
	}
	for i, p := range c.prods {
		c.byLhs[p.Lhs] = append(c.byLhs[p.Lhs], i)
		for _, s := range p.Rhs {
			if s == EOF || s == hash {
				return nil, fmt.Errorf("lalr: reserved symbol %q used in %v", s, p)
			}
			if !c.nonterm[s] {
				c.terms[s] = true
			}
		}
	}
	c.terms[EOF] = true
	c.computeFirst()
	return c, nil
}
