package lalr

import (
	"fmt"
	"sort"
	"strings"
)

// item is one LR(0) item: a production with a dot position.
type item struct {
	prod, dot int
}

// itemSet is a sorted set of LR(0) items.
type itemSet []item

func (s itemSet) sort() {
	sort.Slice(s, func(i, j int) bool {
		if s[i].prod != s[j].prod {
			return s[i].prod < s[j].prod
		}
		return s[i].dot < s[j].dot
	})
}

// key returns a canonical identity string for the set.
func (s itemSet) key() string {
	var b strings.Builder
	for _, it := range s {
		fmt.Fprintf(&b, "%d.%d;", it.prod, it.dot)
	}
	return b.String()
}

// state is one LR(0) automaton state: its kernel items plus the goto
// transition map.
type state struct {
	kernel itemSet
	gotos  map[string]int // symbol -> state index
}

// automaton is the canonical LR(0) collection.
type automaton struct {
	c      *compiled
	states []*state
	index  map[string]int // kernel key -> state index
}

// symbolAfterDot returns the symbol after an item's dot, or "" at the end.
func (c *compiled) symbolAfterDot(it item) string {
	p := c.prods[it.prod]
	if it.dot >= len(p.Rhs) {
		return ""
	}
	return p.Rhs[it.dot]
}

// closure0 expands an item set with all items A -> .gamma for every
// nonterminal A after a dot.
func (c *compiled) closure0(kernel itemSet) itemSet {
	seen := make(map[item]bool, len(kernel))
	var out itemSet
	var stack []item
	for _, it := range kernel {
		if !seen[it] {
			seen[it] = true
			out = append(out, it)
			stack = append(stack, it)
		}
	}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sym := c.symbolAfterDot(it)
		if !c.nonterm[sym] {
			continue
		}
		for _, pi := range c.byLhs[sym] {
			ni := item{prod: pi, dot: 0}
			if !seen[ni] {
				seen[ni] = true
				out = append(out, ni)
				stack = append(stack, ni)
			}
		}
	}
	out.sort()
	return out
}

// goto0 computes the kernel of GOTO(I, X).
func (c *compiled) goto0(closed itemSet, sym string) itemSet {
	var out itemSet
	for _, it := range closed {
		if c.symbolAfterDot(it) == sym {
			out = append(out, item{prod: it.prod, dot: it.dot + 1})
		}
	}
	out.sort()
	return out
}

// buildAutomaton constructs the canonical LR(0) collection from the
// augmented start item.
func buildAutomaton(c *compiled) *automaton {
	a := &automaton{c: c, index: make(map[string]int)}
	start := itemSet{{prod: 0, dot: 0}}
	a.add(start)
	for i := 0; i < len(a.states); i++ {
		st := a.states[i]
		closed := c.closure0(st.kernel)
		// Collect transition symbols in deterministic order.
		var syms []string
		seen := make(map[string]bool)
		for _, it := range closed {
			if s := c.symbolAfterDot(it); s != "" && !seen[s] {
				seen[s] = true
				syms = append(syms, s)
			}
		}
		sort.Strings(syms)
		for _, sym := range syms {
			kernel := c.goto0(closed, sym)
			st.gotos[sym] = a.add(kernel)
		}
	}
	return a
}

// add interns a kernel, returning its state index.
func (a *automaton) add(kernel itemSet) int {
	k := kernel.key()
	if idx, ok := a.index[k]; ok {
		return idx
	}
	idx := len(a.states)
	a.index[k] = idx
	a.states = append(a.states, &state{kernel: kernel, gotos: make(map[string]int)})
	return idx
}
