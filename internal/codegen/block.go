package codegen

import (
	"math"

	"dfg/internal/kernels"
	"dfg/internal/ocl"
)

// Mode selects how the generated kernel's executable plan runs on the
// simulated device.
type Mode int

const (
	// ModeBlocked evaluates the plan over blocks of elements: each
	// instruction processes a whole block before the next instruction
	// runs — the vector-register design NumExpr pioneered for expression
	// fusion. Dispatch overhead amortizes over the block and register
	// blocks stay cache-resident. This is the default.
	ModeBlocked Mode = iota
	// ModeElementwise evaluates every instruction per element — the
	// straightforward interpreter, kept as the ablation baseline.
	// Identical operations in identical order, so results are bitwise
	// equal to ModeBlocked.
	ModeElementwise
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeElementwise {
		return "elementwise"
	}
	return "blocked"
}

// blockSize is the number of elements one register block holds. 256
// float32 lanes x 4 components = 4 KiB per register: a handful of live
// registers stay comfortably in L1.
const blockSize = 256

// makeBlockPassFn compiles one pass's plan into a blocked executor.
// Register layout: regs[(reg*4+lane)*blockSize + e] for element e of the
// current block.
func makeBlockPassFn(plan []instr, numRegs int) ocl.KernelFunc {
	return func(lo, hi int, bufs []ocl.View, _ []float64) {
		regs := make([]float32, numRegs*4*blockSize)
		slot := func(reg, lane int) []float32 {
			off := (reg*4 + lane) * blockSize
			return regs[off : off+blockSize]
		}
		for base := lo; base < hi; base += blockSize {
			n := hi - base
			if n > blockSize {
				n = blockSize
			}
			for _, in := range plan {
				switch in.op {
				case opLoad:
					if in.width == 1 {
						copy(slot(in.dst, 0)[:n], bufs[in.buf].Data[base:base+n])
					} else {
						data := bufs[in.buf].Data
						for c := 0; c < in.width; c++ {
							dst := slot(in.dst, c)
							for e := 0; e < n; e++ {
								dst[e] = data[(base+e)*in.width+c]
							}
						}
					}
				case opConst:
					dst := slot(in.dst, 0)
					for e := 0; e < n; e++ {
						dst[e] = in.val
					}
				case opAdd:
					dst, a, b := slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0)
					for e := 0; e < n; e++ {
						dst[e] = a[e] + b[e]
					}
				case opSub:
					dst, a, b := slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0)
					for e := 0; e < n; e++ {
						dst[e] = a[e] - b[e]
					}
				case opMul:
					dst, a, b := slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0)
					for e := 0; e < n; e++ {
						dst[e] = a[e] * b[e]
					}
				case opDiv:
					dst, a, b := slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0)
					for e := 0; e < n; e++ {
						dst[e] = a[e] / b[e]
					}
				case opMin:
					dst, a, b := slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0)
					for e := 0; e < n; e++ {
						if b[e] < a[e] {
							dst[e] = b[e]
						} else {
							dst[e] = a[e]
						}
					}
				case opMax:
					dst, a, b := slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0)
					for e := 0; e < n; e++ {
						if b[e] > a[e] {
							dst[e] = b[e]
						} else {
							dst[e] = a[e]
						}
					}
				case opSqrt:
					dst, a := slot(in.dst, 0), slot(in.a, 0)
					for e := 0; e < n; e++ {
						dst[e] = float32(math.Sqrt(float64(a[e])))
					}
				case opNeg:
					dst, a := slot(in.dst, 0), slot(in.a, 0)
					for e := 0; e < n; e++ {
						dst[e] = -a[e]
					}
				case opAbs:
					dst, a := slot(in.dst, 0), slot(in.a, 0)
					for e := 0; e < n; e++ {
						v := a[e]
						if v < 0 {
							v = -v
						}
						dst[e] = v
					}
				case opExp:
					blockMap(slot(in.dst, 0), slot(in.a, 0), n, math.Exp)
				case opLog:
					blockMap(slot(in.dst, 0), slot(in.a, 0), n, math.Log)
				case opSin:
					blockMap(slot(in.dst, 0), slot(in.a, 0), n, math.Sin)
				case opCos:
					blockMap(slot(in.dst, 0), slot(in.a, 0), n, math.Cos)
				case opPow:
					dst, a, b := slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0)
					for e := 0; e < n; e++ {
						dst[e] = float32(math.Pow(float64(a[e]), float64(b[e])))
					}
				case opGt:
					blockCmp(slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0), n, func(a, b float32) bool { return a > b })
				case opLt:
					blockCmp(slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0), n, func(a, b float32) bool { return a < b })
				case opGe:
					blockCmp(slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0), n, func(a, b float32) bool { return a >= b })
				case opLe:
					blockCmp(slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0), n, func(a, b float32) bool { return a <= b })
				case opEq:
					blockCmp(slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0), n, func(a, b float32) bool { return a == b })
				case opNe:
					blockCmp(slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0), n, func(a, b float32) bool { return a != b })
				case opSelect:
					dst, c, a, b := slot(in.dst, 0), slot(in.a, 0), slot(in.b, 0), slot(in.c, 0)
					for e := 0; e < n; e++ {
						if c[e] != 0 {
							dst[e] = a[e]
						} else {
							dst[e] = b[e]
						}
					}
				case opNorm:
					dst := slot(in.dst, 0)
					x, y, z := slot(in.a, 0), slot(in.a, 1), slot(in.a, 2)
					for e := 0; e < n; e++ {
						dst[e] = float32(math.Sqrt(float64(x[e])*float64(x[e]) +
							float64(y[e])*float64(y[e]) + float64(z[e])*float64(z[e])))
					}
				case opDecomp:
					copy(slot(in.dst, 0)[:n], slot(in.a, in.comp)[:n])
				case opGrad:
					field := bufs[in.gbufs[0]].Data
					dims := bufs[in.gbufs[1]].Data
					x := bufs[in.gbufs[2]].Data
					y := bufs[in.gbufs[3]].Data
					z := bufs[in.gbufs[4]].Data
					nx, ny, nz := int(dims[0]), int(dims[1]), int(dims[2])
					gx, gy, gz := slot(in.dst, 0), slot(in.dst, 1), slot(in.dst, 2)
					pad := slot(in.dst, 3)
					for e := 0; e < n; e++ {
						gx[e], gy[e], gz[e] = kernels.GradAt(field, x, y, z, nx, ny, nz, base+e)
						pad[e] = 0
					}
				case opGradAxis:
					field := bufs[in.gbufs[0]].Data
					dims := bufs[in.gbufs[1]].Data
					x := bufs[in.gbufs[2]].Data
					y := bufs[in.gbufs[3]].Data
					z := bufs[in.gbufs[4]].Data
					nx, ny, nz := int(dims[0]), int(dims[1]), int(dims[2])
					dst := slot(in.dst, 0)
					for e := 0; e < n; e++ {
						dst[e] = kernels.GradAxisAt(field, x, y, z, nx, ny, nz, base+e, in.comp)
					}
				case opStore:
					if in.width == 1 {
						copy(bufs[in.buf].Data[base:base+n], slot(in.a, 0)[:n])
					} else {
						data := bufs[in.buf].Data
						for c := 0; c < in.width; c++ {
							src := slot(in.a, c)
							for e := 0; e < n; e++ {
								data[(base+e)*in.width+c] = src[e]
							}
						}
					}
				}
			}
		}
	}
}

// blockMap applies a float64 math function over a block.
func blockMap(dst, a []float32, n int, f func(float64) float64) {
	for e := 0; e < n; e++ {
		dst[e] = float32(f(float64(a[e])))
	}
}

// blockCmp applies a comparison over a block with the 1.0/0.0 encoding.
func blockCmp(dst, a, b []float32, n int, f func(a, b float32) bool) {
	for e := 0; e < n; e++ {
		if f(a[e], b[e]) {
			dst[e] = 1
		} else {
			dst[e] = 0
		}
	}
}
