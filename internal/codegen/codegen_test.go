package codegen

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dfg/internal/dataflow"
	"dfg/internal/expr"
	"dfg/internal/kernels"
	"dfg/internal/mesh"
	"dfg/internal/ocl"
	"dfg/internal/vortex"
)

func testEnv() *ocl.Env {
	return ocl.NewEnv(ocl.NewDevice(ocl.XeonX5660Spec(64)))
}

// runProgram binds sources from the given map, allocates scratch and
// output, launches the fused kernel over n elements and returns the
// downloaded output.
func runProgram(t *testing.T, p *Program, n int, sources map[string][]float32) []float32 {
	t.Helper()
	env := testEnv()
	bufs := make([]*ocl.Buffer, len(p.Args))
	var out *ocl.Buffer
	for i, a := range p.Args {
		switch a.Kind {
		case ArgSource:
			data, ok := sources[a.Name]
			if !ok {
				t.Fatalf("missing source %q", a.Name)
			}
			b, err := env.Upload(a.Name, data, a.Width)
			if err != nil {
				t.Fatal(err)
			}
			bufs[i] = b
		case ArgScratch:
			bufs[i] = env.Context().MustBuffer(a.Name, n, a.Width)
		case ArgOut:
			out = env.Context().MustBuffer(a.Name, n, a.Width)
			bufs[i] = out
		}
	}
	if err := env.Run(p.Kernel, n, bufs, nil); err != nil {
		t.Fatal(err)
	}
	got, err := env.Download(out)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// buildVelMag builds sqrt(u*u + v*v + w*w).
func buildVelMag(t *testing.T) *dataflow.Network {
	t.Helper()
	nw := dataflow.NewNetwork()
	for _, s := range []string{"u", "v", "w"} {
		nw.AddSource(s)
	}
	uu, _ := nw.AddFilter("mul", "u", "u")
	vv, _ := nw.AddFilter("mul", "v", "v")
	ww, _ := nw.AddFilter("mul", "w", "w")
	s1, _ := nw.AddFilter("add", uu, vv)
	s2, _ := nw.AddFilter("add", s1, ww)
	out, _ := nw.AddFilter("sqrt", s2)
	if err := nw.SetOutput(out); err != nil {
		t.Fatal(err)
	}
	return nw
}

func randomField(rng *rand.Rand, n int) []float32 {
	f := make([]float32, n)
	for i := range f {
		f[i] = rng.Float32()*4 - 2
	}
	return f
}

func TestFuseVelMag(t *testing.T) {
	nw := buildVelMag(t)
	p, err := Fuse(nw, "velmag")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPasses != 1 {
		t.Fatalf("velmag fuses into 1 pass, got %d", p.NumPasses)
	}
	// Args: u, v, w sources then out. No scratch.
	if len(p.Args) != 4 {
		t.Fatalf("want 4 args, got %v", p.Args)
	}
	for i, want := range []string{"u", "v", "w", "out"} {
		if p.Args[i].Name != want {
			t.Fatalf("arg %d = %q want %q", i, p.Args[i].Name, want)
		}
	}
	if p.Args[3].Kind != ArgOut {
		t.Fatal("last arg must be the output")
	}

	rng := rand.New(rand.NewSource(1))
	const n = 4096
	u, v, w := randomField(rng, n), randomField(rng, n), randomField(rng, n)
	got := runProgram(t, p, n, map[string][]float32{"u": u, "v": v, "w": w})
	want := vortex.VelocityMagnitude(u, v, w)
	for i := 0; i < n; i++ {
		if math.Abs(float64(got[i]-want[i])) > 1e-5 {
			t.Fatalf("fused velmag[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestFusedSourceShape(t *testing.T) {
	nw := buildVelMag(t)
	p, err := Fuse(nw, "velmag")
	if err != nil {
		t.Fatal(err)
	}
	src := p.Source
	for _, frag := range []string{
		"__kernel void kfused_velmag(",
		"__global const float *u",
		"__global float *out",
		"int gid = get_global_id(0);",
		"(u[gid] * u[gid])",
		"sqrt(",
		"out[gid] = ",
	} {
		if !strings.Contains(src, frag) {
			t.Errorf("generated source missing %q:\n%s", frag, src)
		}
	}
	if strings.Contains(src, "dfg_grad3d") {
		t.Error("velmag must not pull in the gradient function")
	}
	if strings.Count(src, "__kernel") != 1 {
		t.Error("single-pass fusion emits exactly one kernel entry")
	}
}

func TestConstantsCompiledIntoSource(t *testing.T) {
	// q = 0.5 * (a - b): the constant must appear as a source literal,
	// never as a buffer argument — the paper's "source-code level
	// insertion of constants".
	nw := dataflow.NewNetwork()
	nw.AddSource("a")
	nw.AddSource("b")
	c := nw.AddConst(0.5)
	d, _ := nw.AddFilter("sub", "a", "b")
	m, _ := nw.AddFilter("mul", c, d)
	nw.SetOutput(m)
	p, err := Fuse(nw, "halfdiff")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Source, "0.5f") {
		t.Fatalf("constant not inlined:\n%s", p.Source)
	}
	if len(p.Args) != 3 { // a, b, out — no const buffer
		t.Fatalf("constants must not become buffer args: %v", p.Args)
	}
	a := []float32{1, 2, 3}
	b := []float32{0, 4, 1}
	got := runProgram(t, p, 3, map[string][]float32{"a": a, "b": b})
	for i, want := range []float32{0.5, -1, 1} {
		if got[i] != want {
			t.Fatalf("halfdiff[%d] = %v want %v", i, got[i], want)
		}
	}
}

// gradientNetwork builds w_x = dw[1] - dv[2] style computation:
// out = grad3d(f)[comp] using source coords.
func gradientNetwork(t *testing.T, comp int) *dataflow.Network {
	t.Helper()
	nw := dataflow.NewNetwork()
	for _, s := range []string{"f", "dims", "x", "y", "z"} {
		nw.AddSource(s)
	}
	g, err := nw.AddFilter("grad3d", "f", "dims", "x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	d, err := nw.AddDecompose(g, comp)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetOutput(d)
	return nw
}

func meshSources(m *mesh.Mesh, field []float32) map[string][]float32 {
	x, y, z := m.CellCenterFields()
	return map[string][]float32{
		"f":    field,
		"dims": kernels.DimsArray(m.Dims.NX, m.Dims.NY, m.Dims.NZ),
		"x":    x,
		"y":    y,
		"z":    z,
	}
}

func TestFuseGradientDecompose(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 8, NY: 6, NZ: 4}, 0.5, 0.25, 1)
	rng := rand.New(rand.NewSource(2))
	field := randomField(rng, m.Cells())
	want := mesh.Gradient3D(field, m)

	for comp := 0; comp < 3; comp++ {
		nw := gradientNetwork(t, comp)
		p, err := Fuse(nw, "gradc")
		if err != nil {
			t.Fatal(err)
		}
		if p.NumPasses != 1 {
			t.Fatalf("gradient of a source fuses into one pass, got %d", p.NumPasses)
		}
		if !strings.Contains(p.Source, ".s"+string(rune('0'+comp))) {
			t.Errorf("decompose must compile to vector component select .s%d:\n%s", comp, p.Source)
		}
		if !strings.Contains(p.Source, "float4 r") {
			t.Error("gradient result must live in a float4 register")
		}
		got := runProgram(t, p, m.Cells(), meshSources(m, field))
		for i := 0; i < m.Cells(); i++ {
			if math.Abs(float64(got[i]-want[4*i+comp])) > 1e-4 {
				t.Fatalf("comp %d cell %d: %v want %v", comp, i, got[i], want[4*i+comp])
			}
		}
	}
}

func TestMaterializationPassSplit(t *testing.T) {
	// out = grad3d(f*f)[0]: the stencil consumes a computed value, so the
	// generator must materialize f*f in global scratch and split passes —
	// the paper's Figure 2 fusion case (one extra problem-sized array).
	m := mesh.MustUniform(mesh.Dims{NX: 10, NY: 5, NZ: 3}, 0.3, 0.7, 0.9)
	rng := rand.New(rand.NewSource(4))
	field := randomField(rng, m.Cells())

	nw := dataflow.NewNetwork()
	for _, s := range []string{"f", "dims", "x", "y", "z"} {
		nw.AddSource(s)
	}
	sq, _ := nw.AddFilter("mul", "f", "f")
	g, err := nw.AddFilter("grad3d", sq, "dims", "x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	d, _ := nw.AddDecompose(g, 0)
	nw.SetOutput(d)

	p, err := Fuse(nw, "gradsq")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPasses != 2 {
		t.Fatalf("materialization requires 2 passes, got %d", p.NumPasses)
	}
	scratch := 0
	for _, a := range p.Args {
		if a.Kind == ArgScratch {
			scratch++
		}
	}
	if scratch != 1 {
		t.Fatalf("want exactly 1 scratch array, got %d (%v)", scratch, p.Args)
	}
	if strings.Count(p.Source, "__kernel") != 2 {
		t.Fatalf("two passes emit two kernel entries:\n%s", p.Source)
	}

	got := runProgram(t, p, m.Cells(), meshSources(m, field))
	sq2 := make([]float32, m.Cells())
	for i, v := range field {
		sq2[i] = v * v
	}
	want := mesh.Gradient3D(sq2, m)
	for i := 0; i < m.Cells(); i++ {
		if math.Abs(float64(got[i]-want[4*i])) > 1e-4 {
			t.Fatalf("cell %d: %v want %v", i, got[i], want[4*i])
		}
	}
}

func TestFuseRejectsComputedCoords(t *testing.T) {
	nw := dataflow.NewNetwork()
	for _, s := range []string{"f", "dims", "x", "y", "z"} {
		nw.AddSource(s)
	}
	dd, _ := nw.AddFilter("mul", "dims", "dims")
	g, err := nw.AddFilter("grad3d", "f", dd, "x", "y", "z")
	if err != nil {
		t.Skip("network already rejects computed dims")
	}
	nw.SetOutput(g)
	if _, err := Fuse(nw, "bad"); err == nil {
		t.Fatal("computed dims/coords must be rejected")
	}
}

func TestFuseOutputIsSource(t *testing.T) {
	nw := dataflow.NewNetwork()
	nw.AddSource("u")
	nw.SetOutput("u")
	p, err := Fuse(nw, "copy")
	if err != nil {
		t.Fatal(err)
	}
	got := runProgram(t, p, 3, map[string][]float32{"u": {7, 8, 9}})
	for i, want := range []float32{7, 8, 9} {
		if got[i] != want {
			t.Fatalf("copy[%d] = %v", i, got[i])
		}
	}
	if !strings.Contains(p.Source, "out[gid] = u[gid];") {
		t.Fatalf("trivial copy source wrong:\n%s", p.Source)
	}
}

func TestFuseOutputIsConst(t *testing.T) {
	nw := dataflow.NewNetwork()
	nw.AddSource("u") // dead source
	c := nw.AddConst(2.5)
	nw.SetOutput(c)
	p, err := Fuse(nw, "konst")
	if err != nil {
		t.Fatal(err)
	}
	// The dead source is pruned from the args.
	if len(p.Args) != 1 || p.Args[0].Kind != ArgOut {
		t.Fatalf("const output needs only the out arg, got %v", p.Args)
	}
	got := runProgram(t, p, 4, nil)
	for i := range got {
		if got[i] != 2.5 {
			t.Fatalf("const[%d] = %v", i, got[i])
		}
	}
}

func TestFuseErrors(t *testing.T) {
	nw := dataflow.NewNetwork()
	nw.AddSource("u")
	if _, err := Fuse(nw, "noout"); err == nil {
		t.Fatal("fusing a network without an output must fail")
	}
}

func TestFusedCostModel(t *testing.T) {
	nw := buildVelMag(t)
	p, err := Fuse(nw, "velmag")
	if err != nil {
		t.Fatal(err)
	}
	c := p.Kernel.Cost
	if c.Flops != 6 {
		t.Errorf("velmag fused flops = %v, want 6 (3 mul + 2 add + 1 sqrt)", c.Flops)
	}
	if c.LoadBytes != 12 {
		t.Errorf("velmag fused loads = %v B/elem, want 12 (u, v, w once each)", c.LoadBytes)
	}
	if c.StoreBytes != 4 {
		t.Errorf("velmag fused stores = %v B/elem, want 4 (result only)", c.StoreBytes)
	}
}

func TestVectorOutput(t *testing.T) {
	// The network output itself may be vector-valued (raw gradient).
	m := mesh.MustUniform(mesh.Dims{NX: 6, NY: 4, NZ: 3}, 1, 1, 1)
	rng := rand.New(rand.NewSource(9))
	field := randomField(rng, m.Cells())
	nw := dataflow.NewNetwork()
	for _, s := range []string{"f", "dims", "x", "y", "z"} {
		nw.AddSource(s)
	}
	g, _ := nw.AddFilter("grad3d", "f", "dims", "x", "y", "z")
	nw.SetOutput(g)
	p, err := Fuse(nw, "rawgrad")
	if err != nil {
		t.Fatal(err)
	}
	if p.OutWidth != 4 {
		t.Fatalf("raw gradient output width = %d, want 4", p.OutWidth)
	}
	got := runProgram(t, p, m.Cells(), meshSources(m, field))
	want := mesh.Gradient3D(field, m)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("rawgrad[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestArgKindString(t *testing.T) {
	if ArgSource.String() != "source" || ArgScratch.String() != "scratch" || ArgOut.String() != "out" {
		t.Fatal("arg kind names wrong")
	}
	if !strings.Contains(ArgKind(9).String(), "9") {
		t.Fatal("unknown arg kind should embed the value")
	}
}

// TestExecutionModesBitwiseEqual: the blocked executor performs the same
// float32 operations in the same order as the element-wise interpreter,
// so results are bitwise identical.
func TestExecutionModesBitwiseEqual(t *testing.T) {
	m := mesh.MustUniform(mesh.Dims{NX: 11, NY: 9, NZ: 30}, 0.3, 0.5, 0.2)
	rng := rand.New(rand.NewSource(8))
	field := randomField(rng, m.Cells())

	// A network exercising every op family: gradient, decompose, norm,
	// comparisons, select, arithmetic, sqrt.
	nw := dataflow.NewNetwork()
	for _, s := range []string{"f", "dims", "x", "y", "z"} {
		nw.AddSource(s)
	}
	g, _ := nw.AddFilter("grad3d", "f", "dims", "x", "y", "z")
	nrm, _ := nw.AddFilter("norm", g)
	gx, _ := nw.AddDecompose(g, 0)
	gy, _ := nw.AddDecompose(g, 1)
	c, _ := nw.AddFilter("gt", gx, gy)
	absv, _ := nw.AddFilter("abs", gx)
	sq, _ := nw.AddFilter("sqrt", absv)
	sel, _ := nw.AddFilter("select", c, nrm, sq)
	half := nw.AddConst(0.5)
	out, _ := nw.AddFilter("mul", half, sel)
	nw.SetOutput(out)

	pBlocked, err := FuseWithMode(nw, "mix", ModeBlocked)
	if err != nil {
		t.Fatal(err)
	}
	pElem, err := FuseWithMode(nw, "mix", ModeElementwise)
	if err != nil {
		t.Fatal(err)
	}
	if pBlocked.Source != pElem.Source {
		t.Fatal("execution mode must not change generated source")
	}
	src := meshSources(m, field)
	a := runProgram(t, pBlocked, m.Cells(), src)
	b := runProgram(t, pElem, m.Cells(), src)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("modes differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if ModeBlocked.String() != "blocked" || ModeElementwise.String() != "elementwise" {
		t.Fatal("mode names wrong")
	}
}

// TestBlockedModePartialBlocks covers sizes that do not divide the block
// size (the final short block).
func TestBlockedModePartialBlocks(t *testing.T) {
	for _, n := range []int{1, 7, 255, 256, 257, 1000} {
		nw := buildVelMag(t)
		p, err := Fuse(nw, "velmag")
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		u, v, w := randomField(rng, n), randomField(rng, n), randomField(rng, n)
		got := runProgram(t, p, n, map[string][]float32{"u": u, "v": v, "w": w})
		want := vortex.VelocityMagnitude(u, v, w)
		for i := 0; i < n; i++ {
			if math.Abs(float64(got[i]-want[i])) > 1e-5 {
				t.Fatalf("n=%d: cell %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

// TestAllPrimitivesThroughBothExecutors runs a network touching every
// elementwise primitive through both execution modes and checks the
// result against a direct host computation — covering every opcode in
// both interpreters.
func TestAllPrimitivesThroughBothExecutors(t *testing.T) {
	src := `s = u + v
d = u - v
p = u * v
q = u / (v + 10)
mn = min(u, v)
mx = max(u, v)
r = sqrt(abs(d))
n = -r
e = exp(-abs(s))
l = log(abs(p) + 1)
si = sin(u)
co = cos(v)
pw = pow(abs(u) + 0.5, 2)
c1 = u > v
c2 = u < v
c3 = u >= v
c4 = u <= v
c5 = u == v
c6 = u != v
sel = if (c1) then (mn) else (mx)
out = s + d + p + q + r + n + e + l + si + co + pw + c2 + c3 + c4 + c5 + c6 + sel`
	net, err := expr.Compile(src)
	if err != nil {
		t.Fatal(err)
	}

	const n = 777 // not a multiple of the block size
	rng := rand.New(rand.NewSource(13))
	u := randomField(rng, n)
	v := randomField(rng, n)
	want := make([]float32, n)
	for i := 0; i < n; i++ {
		a, b := u[i], v[i]
		s := a + b
		d := a - b
		p := a * b
		q := a / (b + 10)
		mn, mx := a, a
		if b < mn {
			mn = b
		}
		if b > mx {
			mx = b
		}
		r := float32(math.Sqrt(math.Abs(float64(d))))
		ng := -r
		e := float32(math.Exp(-math.Abs(float64(s))))
		l := float32(math.Log(math.Abs(float64(p)) + 1))
		si := float32(math.Sin(float64(a)))
		co := float32(math.Cos(float64(b)))
		pw := float32(math.Pow(math.Abs(float64(a))+0.5, 2))
		b2f := func(ok bool) float32 {
			if ok {
				return 1
			}
			return 0
		}
		sel := mx
		if a > b {
			sel = mn
		}
		want[i] = s + d + p + q + r + ng + e + l + si + co + pw +
			b2f(a < b) + b2f(a >= b) + b2f(a <= b) + b2f(a == b) + b2f(a != b) + sel
	}

	for _, mode := range []Mode{ModeBlocked, ModeElementwise} {
		prog, err := FuseWithMode(net, "allops", mode)
		if err != nil {
			t.Fatal(err)
		}
		got := runProgram(t, prog, n, map[string][]float32{"u": u, "v": v})
		for i := 0; i < n; i++ {
			if d := math.Abs(float64(got[i] - want[i])); d > 2e-4*(1+math.Abs(float64(want[i]))) {
				t.Fatalf("%v: cell %d: %v vs %v", mode, i, got[i], want[i])
			}
		}
	}
}
