package codegen

import (
	"fmt"

	"dfg/internal/dataflow"
	"dfg/internal/kernels"
	"dfg/internal/ocl"
	"dfg/internal/passes"
)

// This file is the schedule-consuming backend of the fusion generator:
// FuseScheduled takes the Schedule annotation set internal/passes
// lowered for a network and emits the tiled / vectorized / temporally
// blocked kernel variant instead of the single flat body.
//
// The bitwise contract: a scheduled program's executable plan performs
// exactly the same per-element arithmetic as the flat program's — the
// non-temporal transformations reuse the flat pass closures untouched
// (tiling, register blocking and vector loads only reshape the emitted
// source and the modeled memory traffic), and temporal blocking re-runs
// the identical pass-0 closure over a halo-extended range into virtual
// scratch before the identical pass-1 closure reads it back. Every
// scheduled variant is therefore zero-ULP identical to the flat kernel
// by construction; the differential fuzz target in internal/strategy
// enforces it end to end.

// Per-stencil bytes the flat cost model charges against the *field*
// array (as opposed to the coordinate arrays): tiling moves exactly
// these from global to local memory. kernels.GradCost's 40 load bytes
// split 24 field + 16 coords; GradAxisCost's 16 split 8 + 8.
const (
	gradFieldBytes     = 24
	gradAxisFieldBytes = 8
)

// FuseScheduled generates the scheduled kernel program for a validated
// network. A nil schedule falls through to the flat generator (as does
// Fuse itself); otherwise the schedule must have been computed by
// passes.ComputeSchedule for this same network — Verify re-checks it
// here before anything is emitted.
func FuseScheduled(net *dataflow.Network, name string, sched *passes.Schedule) (*Program, error) {
	if sched == nil {
		return Fuse(net, name)
	}
	if err := sched.Verify(net); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	order, err := net.TopoOrder()
	if err != nil {
		return nil, err
	}
	g := &generator{
		net:    net,
		name:   name,
		mode:   ModeBlocked,
		sched:  sched,
		order:  order,
		pass:   make(map[string]int),
		byID:   make(map[string]*dataflow.Node, len(order)),
		reg:    make(map[string]int),
		bufIdx: make(map[string]int),
	}
	for _, n := range order {
		g.byID[n.ID] = n
	}
	for _, r := range net.Roots() {
		g.roots = append(g.roots, g.byID[r])
	}
	if err := g.assignPasses(); err != nil {
		return nil, err
	}
	if g.numPasses != sched.Passes {
		return nil, fmt.Errorf("codegen: schedule computed for a %d-pass network, generator found %d passes", sched.Passes, g.numPasses)
	}
	g.planArgs()
	g.allocRegisters()
	return g.emitScheduled()
}

// emitScheduled mirrors emit(): it builds the flat per-pass executable
// plans (the bitwise ground truth), fuses them temporally if scheduled,
// reprices the traffic, and renders the scheduled source.
func (g *generator) emitScheduled() (*Program, error) {
	passNodes := make([][]*dataflow.Node, g.numPasses)
	for _, n := range g.order {
		passNodes[g.pass[n.ID]] = append(passNodes[g.pass[n.ID]], n)
	}

	var (
		passFns   []ocl.KernelFunc
		passCosts []ocl.Cost
	)
	for p := 0; p < g.numPasses; p++ {
		_, fn, passCost, err := g.emitPass(p, passNodes[p])
		if err != nil {
			return nil, err
		}
		passFns = append(passFns, fn)
		passCosts = append(passCosts, passCost)
	}

	numPasses := g.numPasses
	if g.sched.Temporal {
		passFns = []ocl.KernelFunc{g.makeTemporalFn(passFns[0], passFns[1])}
		numPasses = 1
	}

	src := g.renderScheduledSource(passNodes)
	k := &ocl.Kernel{
		Name:    "kfused_" + g.name,
		Source:  src,
		NumBufs: len(g.args),
		Cost:    g.scheduledCost(passCosts),
		Passes:  passFns,
	}
	widths := make([]int, len(g.roots))
	for i, r := range g.roots {
		widths[i] = r.Width
	}
	return &Program{
		Source:    src,
		Kernel:    k,
		Args:      append([]Arg(nil), g.args...),
		NumPasses: numPasses,
		OutWidth:  widths[0],
		OutWidths: widths,
		Schedule:  g.sched.Spec.String(),
	}, nil
}

// makeTemporalFn fuses the two flat pass closures into one dispatch
// phase. For each chunk [lo, hi) the producer pass re-runs over the
// halo-extended range [lo-halo, hi+halo) into freshly allocated virtual
// scratch views (the per-tile local arrays of the emitted source), then
// the consumer pass runs over exactly [lo, hi) reading them back. The
// halo is one z-plane (nx*ny elements) — the farthest neighbour any
// stencil reads — so every value the consumer touches was recomputed by
// the very same closure that produced it in the flat program: bitwise
// identity holds per element.
func (g *generator) makeTemporalFn(pre, post ocl.KernelFunc) ocl.KernelFunc {
	dimsIdx := -1
	for _, n := range g.order {
		if n.Info().Class == dataflow.ClassStencil {
			dimsIdx = g.bufIdx[n.Inputs[1]]
			break
		}
	}
	outIdx := g.bufIdx[g.outKey(0)]
	virtWidths := append([]int(nil), g.virtWidths...)
	return func(lo, hi int, bufs []ocl.View, scalars []float64) {
		elems := bufs[outIdx].Elems
		halo := 0
		if dimsIdx >= 0 {
			dims := bufs[dimsIdx].Data
			halo = int(dims[0]) * int(dims[1])
		}
		lo2, hi2 := lo-halo, hi+halo
		if lo2 < 0 {
			lo2 = 0
		}
		if hi2 > elems {
			hi2 = elems
		}
		all := make([]ocl.View, len(bufs), len(bufs)+len(virtWidths))
		copy(all, bufs)
		for _, w := range virtWidths {
			all = append(all, ocl.View{Data: make([]float32, elems*w), Elems: elems, Width: w})
		}
		pre(lo2, hi2, all, scalars)
		post(lo, hi, all, scalars)
	}
}

// scheduledCost reprices the flat per-pass costs under the schedule:
//
//   - tiling moves each stencil's field-neighbour bytes from global to
//     local memory and adds one halo-redundant stage-in per staged
//     array (factor h = (TX+2)(TY+2)/(TX*TY) per element);
//   - vectorized access sets the cost's VectorWidth so the device model
//     applies its effective-bandwidth gain;
//   - temporal blocking deletes the fused intermediates' global
//     round-trip (store + reload become local traffic) and charges the
//     producer pass's halo recompute (factor h-1) in flops and loads.
//
// Flat kernels never pass through here, so their costs — and with them
// every Table-II-style ordering — are untouched.
func (g *generator) scheduledCost(passCosts []ocl.Cost) ocl.Cost {
	var total ocl.Cost
	for _, c := range passCosts {
		total = total.Add(c)
	}
	s := g.sched
	spec := s.Spec

	staged := make(map[string]bool, len(s.Staged))
	for _, st := range s.Staged {
		staged[st.Field] = true
	}
	fusedNode := make(map[string]bool, len(s.FusedScratch))
	fusedField := make(map[string]bool, len(s.FusedScratch))
	for _, id := range s.FusedScratch {
		fusedNode[id] = true
		fusedField[scratchName(id)] = true
	}
	h := 1.0
	if spec.Tiled() {
		h = float64((spec.TileX+2)*(spec.TileY+2)) / float64(spec.TileX*spec.TileY)
	}

	if spec.Tiled() {
		for _, n := range g.order {
			if n.Info().Class != dataflow.ClassStencil {
				continue
			}
			field := g.byID[n.Inputs[0]]
			fieldArg := field.ID
			if field.Filter != "source" {
				fieldArg = scratchName(field.ID)
			}
			if !staged[fieldArg] {
				continue
			}
			fb := float64(gradFieldBytes)
			if _, ok := kernels.GradAxisOf(n.Filter); ok {
				fb = gradAxisFieldBytes
			}
			total.LoadBytes -= fb
			total.LocalBytes += fb
		}
		for _, st := range s.Staged {
			if fusedField[st.Field] {
				continue // temporally fused: recomputed locally, never staged from global
			}
			total.LoadBytes += 4 * h
			total.LocalBytes += 4 * h
		}
	}

	if s.VectorStage || len(s.VectorLoads) > 0 {
		total.VectorWidth = spec.Vector
	}

	if s.Temporal {
		for _, id := range s.FusedScratch {
			w := float64(g.byID[id].Width)
			total.StoreBytes -= 4 * w
			total.LocalBytes += 4 * w * h
			if g.operandReloaded(id) {
				total.LoadBytes -= 4 * w
				total.LocalBytes += 4 * w
			}
		}
		total.Flops += passCosts[0].Flops * (h - 1)
		total.LoadBytes += passCosts[0].LoadBytes * (h - 1)
	}
	return total
}

// operandReloaded reports whether the flat program reloads a
// materialized node from global scratch through the operand path in a
// later pass — i.e. any later-pass consumer other than a stencil
// reading it as the field input (stencil field reads are covered by the
// grad cost, not an operand load), or the final root store.
func (g *generator) operandReloaded(id string) bool {
	for _, n := range g.order {
		if g.pass[n.ID] <= g.pass[id] {
			continue
		}
		for i, in := range n.Inputs {
			if in != id {
				continue
			}
			if i == 0 && n.Info().Class == dataflow.ClassStencil {
				continue
			}
			return true
		}
	}
	for _, r := range g.roots {
		if r.ID == id && g.pass[id] < g.numPasses-1 {
			return true
		}
	}
	return false
}
