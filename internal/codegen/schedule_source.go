package codegen

import (
	"fmt"
	"strings"

	"dfg/internal/dataflow"
	"dfg/internal/kernels"
	"dfg/internal/passes"
)

// This file renders the OpenCL C source of scheduled kernels. The text
// is what a real OpenCL runtime would JIT — golden tests pin it per
// transformation — while the numerics come from the executable plan in
// schedule.go, which is shared with the flat generator.

// Schedule helper sources, emitted after the tile-geometry defines.
const (
	axisDiffLocalSrc = `// dfg schedule helper: axis difference against a __local staged tile.
// lidx indexes the tile (halo included), gid the global coordinate
// array; lstride/gstride are the axis strides in each space.
inline float dfg_axis_diff_local(__local const float *f,
                                 __global const float *coord,
                                 int lidx, int gid, int p, int n,
                                 int lstride, int gstride)
{
    if (n == 1) {
        return 0.0f;
    }
    if (p == 0) {
        return (f[lidx + lstride] - f[lidx])
             / (coord[gid + gstride] - coord[gid]);
    }
    if (p == n - 1) {
        return (f[lidx] - f[lidx - lstride])
             / (coord[gid] - coord[gid - gstride]);
    }
    return (f[lidx + lstride] - f[lidx - lstride])
         / (coord[gid + gstride] - coord[gid - gstride]);
}
`

	stageTileSrc = `// dfg schedule helper: cooperative stage-in of one (TILE+halo)^2 slab;
// each work-item copies a strided share. Callers barrier before reading.
inline void dfg_stage_tile(__local float *lt,
                           __global const float *src,
                           int tbase, int nx, int lid, int lsz)
{
    for (int t = lid; t < DFG_LTILE; t += lsz) {
        lt[t] = src[tbase + (t / DFG_LW) * nx + (t % DFG_LW)];
    }
}
`

	stageTile4Src = `// dfg schedule helper: vectorized stage-in — float4 interior copies,
// scalar moves for the ragged tail.
inline void dfg_stage_tile4(__local float *lt,
                            __global const float *src,
                            int tbase, int nx, int lid, int lsz)
{
    for (int t = lid * 4; t + 3 < DFG_LTILE; t += lsz * 4) {
        float4 v = vload4(0, src + tbase + (t / DFG_LW) * nx + (t % DFG_LW));
        vstore4(v, 0, (__local float *)(lt + t));
    }
    for (int t = (DFG_LTILE & ~3) + lid; t < DFG_LTILE; t += lsz) {
        lt[t] = src[tbase + (t / DFG_LW) * nx + (t % DFG_LW)];
    }
}
`

	gradTileSrc = `// dfg schedule helper: grad3d over a staged tile — x/y neighbours come
// from local memory, z neighbours stream through global (2.5D tiling).
inline float4 dfg_grad3d_tile(__local const float *lf,
                              __global const float *f,
                              __global const float *dims,
                              __global const float *x,
                              __global const float *y,
                              __global const float *z,
                              int gid, int lidx)
{
    int nx = (int)dims[0];
    int ny = (int)dims[1];
    int nz = (int)dims[2];
    int i = gid % nx;
    int rest = gid / nx;
    int j = rest % ny;
    int k = rest / ny;
    float4 g;
    g.s0 = dfg_axis_diff_local(lf, x, lidx, gid, i, nx, 1, 1);
    g.s1 = dfg_axis_diff_local(lf, y, lidx, gid, j, ny, DFG_LW, nx);
    g.s2 = dfg_axis_diff(f, z, gid, k, nz, nx * ny);
    g.s3 = 0.0f;
    return g;
}
`

	gradAxisTileSrc = `// dfg schedule helper: single-axis gradient over a staged tile.
inline float dfg_grad3d_axis_tile(__local const float *lf,
                                  __global const float *f,
                                  __global const float *dims,
                                  __global const float *coord,
                                  int gid, int lidx, int axis)
{
    int nx = (int)dims[0];
    int ny = (int)dims[1];
    int nz = (int)dims[2];
    int i = gid % nx;
    int rest = gid / nx;
    int j = rest % ny;
    int k = rest / ny;
    if (axis == 0) {
        return dfg_axis_diff_local(lf, coord, lidx, gid, i, nx, 1, 1);
    }
    if (axis == 1) {
        return dfg_axis_diff_local(lf, coord, lidx, gid, j, ny, DFG_LW, nx);
    }
    return dfg_axis_diff(f, coord, gid, k, nz, nx * ny);
}
`

	gradTlocSrc = `// dfg schedule helper: grad3d over temporally recomputed local scratch —
// three staged z-planes (below/center/above), all neighbours local.
inline float4 dfg_grad3d_tloc(__local const float *lf,
                              __global const float *dims,
                              __global const float *x,
                              __global const float *y,
                              __global const float *z,
                              int gid, int lidx)
{
    int nx = (int)dims[0];
    int ny = (int)dims[1];
    int nz = (int)dims[2];
    int i = gid % nx;
    int rest = gid / nx;
    int j = rest % ny;
    int k = rest / ny;
    float4 g;
    g.s0 = dfg_axis_diff_local(lf + DFG_LTILE, x, lidx, gid, i, nx, 1, 1);
    g.s1 = dfg_axis_diff_local(lf + DFG_LTILE, y, lidx, gid, j, ny, DFG_LW, nx);
    g.s2 = dfg_axis_diff_local(lf, z, DFG_LTILE + lidx, gid, k, nz, DFG_LTILE, nx * ny);
    g.s3 = 0.0f;
    return g;
}
`

	gradAxisTlocSrc = `// dfg schedule helper: single-axis gradient over temporal local scratch.
inline float dfg_grad3d_axis_tloc(__local const float *lf,
                                  __global const float *dims,
                                  __global const float *coord,
                                  int gid, int lidx, int axis)
{
    int nx = (int)dims[0];
    int ny = (int)dims[1];
    int nz = (int)dims[2];
    int i = gid % nx;
    int rest = gid / nx;
    int j = rest % ny;
    int k = rest / ny;
    if (axis == 0) {
        return dfg_axis_diff_local(lf + DFG_LTILE, coord, lidx, gid, i, nx, 1, 1);
    }
    if (axis == 1) {
        return dfg_axis_diff_local(lf + DFG_LTILE, coord, lidx, gid, j, ny, DFG_LW, nx);
    }
    return dfg_axis_diff_local(lf, coord, DFG_LTILE + lidx, gid, k, nz, DFG_LTILE, nx * ny);
}
`
)

// schedCtx carries the per-render bookkeeping of the scheduled source
// walk: which helper functions the emitted statements ended up needing.
type schedCtx struct {
	staged     map[string]bool // staged field arg name -> true
	fusedNode  map[string]bool // temporally fused node ID -> true
	needsTile  bool            // emitted a dfg_grad3d_tile call
	needsAxisT bool            // emitted a dfg_grad3d_axis_tile call
	needsTloc  bool            // emitted a dfg_grad3d_tloc call
	needsAxisL bool            // emitted a dfg_grad3d_axis_tloc call
	needsFlat  bool            // emitted a flat dfg_grad3d call
	needsAxisF bool            // emitted a flat dfg_grad3d_axis call
}

// renderScheduledSource assembles the scheduled kernel's OpenCL C.
func (g *generator) renderScheduledSource(passNodes [][]*dataflow.Node) string {
	s := g.sched
	spec := s.Spec
	ctx := &schedCtx{
		staged:    make(map[string]bool, len(s.Staged)),
		fusedNode: make(map[string]bool, len(s.FusedScratch)),
	}
	for _, st := range s.Staged {
		ctx.staged[st.Field] = true
	}
	for _, id := range s.FusedScratch {
		ctx.fusedNode[id] = true
	}
	tiled := spec.Tiled() && (len(s.Staged) > 0 || s.Temporal)

	// Render the kernel bodies first: they decide which helpers the
	// header must include.
	var kernelsSrc []string
	if s.Temporal {
		kernelsSrc = append(kernelsSrc, g.renderTiledKernel(ctx, "kfused_"+g.name, passNodes, -1))
	} else if tiled {
		for p := range passNodes {
			name := "kfused_" + g.name
			if len(passNodes) > 1 {
				name = fmt.Sprintf("%s_pass%d", name, p)
			}
			kernelsSrc = append(kernelsSrc, g.renderTiledKernel(ctx, name, passNodes, p))
		}
	} else {
		for p := range passNodes {
			name := "kfused_" + g.name
			if len(passNodes) > 1 {
				name = fmt.Sprintf("%s_pass%d", name, p)
			}
			kernelsSrc = append(kernelsSrc, g.renderLinearKernel(ctx, name, passNodes, p))
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "// fused derived-field kernel %q generated by dfg/codegen\n", g.name)
	fmt.Fprintf(&b, "// schedule: %s\n", spec)
	for _, st := range s.Staged {
		fmt.Fprintf(&b, "//   stage %s -> __local %s (%d stencil(s), halo 1)\n", st.Field, st.Local, st.Stencils)
	}
	if len(s.VectorLoads) > 0 {
		fmt.Fprintf(&b, "//   vload%d sources: %s\n", spec.Vector, strings.Join(s.VectorLoads, ", "))
	}
	if s.VectorStage {
		fmt.Fprintf(&b, "//   vectorized staging copies (float%d)\n", spec.Vector)
	}
	if s.Temporal {
		fmt.Fprintf(&b, "//   temporal: %d passes fused per tile (halo recompute, no global scratch)\n", s.Passes)
	} else {
		fmt.Fprintf(&b, "// %d pass(es); intermediate results in device registers\n", len(passNodes))
	}
	if tiled {
		b.WriteString("\n")
		fmt.Fprintf(&b, "#define DFG_TILE_X %d\n", spec.TileX)
		fmt.Fprintf(&b, "#define DFG_TILE_Y %d\n", spec.TileY)
		b.WriteString("#define DFG_LW (DFG_TILE_X + 2)\n")
		b.WriteString("#define DFG_LH (DFG_TILE_Y + 2)\n")
		b.WriteString("#define DFG_LTILE (DFG_LW * DFG_LH)\n")
	}
	if spec.Register > 1 {
		if !tiled {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "#define DFG_REG %d\n", spec.Register)
	}
	if ctx.needsFlat || ctx.needsAxisF || ctx.needsTile || ctx.needsAxisT || ctx.needsTloc || ctx.needsAxisL {
		b.WriteString("\n")
		b.WriteString(kernels.Grad3DFunction) // defines dfg_axis_diff (+ flat dfg_grad3d)
		if ctx.needsAxisF {
			b.WriteString("\n")
			b.WriteString(kernels.Grad3DAxisFunction)
		}
	}
	if ctx.needsTile || ctx.needsAxisT || ctx.needsTloc || ctx.needsAxisL {
		b.WriteString("\n")
		b.WriteString(axisDiffLocalSrc)
	}
	if tiled && len(stagedNonFused(s)) > 0 {
		b.WriteString("\n")
		if s.VectorStage {
			b.WriteString(stageTile4Src)
		} else {
			b.WriteString(stageTileSrc)
		}
	}
	for _, h := range []struct {
		need bool
		src  string
	}{
		{ctx.needsTile, gradTileSrc},
		{ctx.needsAxisT, gradAxisTileSrc},
		{ctx.needsTloc, gradTlocSrc},
		{ctx.needsAxisL, gradAxisTlocSrc},
	} {
		if h.need {
			b.WriteString("\n")
			b.WriteString(h.src)
		}
	}
	for _, k := range kernelsSrc {
		b.WriteString("\n")
		b.WriteString(k)
	}
	return b.String()
}

// stagedNonFused lists the staged fields that really stage from global
// memory (temporally fused intermediates are recomputed, not staged).
func stagedNonFused(s *passes.Schedule) []passes.StagedField {
	fused := make(map[string]bool, len(s.FusedScratch))
	for _, id := range s.FusedScratch {
		fused[scratchName(id)] = true
	}
	var out []passes.StagedField
	for _, st := range s.Staged {
		if !fused[st.Field] {
			out = append(out, st)
		}
	}
	return out
}

// renderLinearKernel renders an untiled scheduled pass body: the flat
// 1D iteration shape with vectorized loads and/or register blocking.
func (g *generator) renderLinearKernel(ctx *schedCtx, name string, passNodes [][]*dataflow.Node, p int) string {
	s := g.sched
	vec := len(s.VectorLoads) > 0
	var b strings.Builder
	if len(passNodes) > 1 {
		fmt.Fprintf(&b, "// pass %d (device-wide barrier before the next pass;\n", p)
		b.WriteString("// the runtime dispatches all passes as one fused launch)\n")
	}
	fmt.Fprintf(&b, "__kernel void %s(\n%s)\n{\n", name, g.renderParams())
	b.WriteString("    int gid = get_global_id(0);\n")
	indent := "    "
	if s.Spec.Register > 1 {
		b.WriteString("    // register blocking: each work-item carries DFG_REG elements\n")
		b.WriteString("    #pragma unroll\n")
		b.WriteString("    for (int rb = 0; rb < DFG_REG; ++rb, gid += get_global_size(0)) {\n")
		indent = "        "
	}
	if vec && p == loadPassFor(g, passNodes) {
		for _, src := range s.VectorLoads {
			fmt.Fprintf(&b, "%sfloat%d v_%s = vload%d(gid, %s);\n", indent, s.Spec.Vector, src, s.Spec.Vector, src)
		}
	}
	for _, line := range g.schedStmts(ctx, p, passNodes[p], "gid", vec) {
		b.WriteString(indent)
		b.WriteString(line)
		b.WriteString("\n")
	}
	if s.Spec.Register > 1 {
		b.WriteString("    }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// loadPassFor returns the pass whose body carries the vector-load
// preamble. Vector loads only apply to fully elementwise networks,
// which are always single-pass, so this is pass 0.
func loadPassFor(*generator, [][]*dataflow.Node) int { return 0 }

// renderTiledKernel renders a tiled pass body (p == -1 renders the
// temporally fused kernel covering both passes).
func (g *generator) renderTiledKernel(ctx *schedCtx, name string, passNodes [][]*dataflow.Node, p int) string {
	s := g.sched
	spec := s.Spec
	dimsName := g.dimsSourceName()

	// Which fields stage from global in this kernel: staged fields read
	// by the stencils of the rendered pass(es), minus fused scratch.
	stage := g.stagedForPass(passNodes, p)

	var b strings.Builder
	if p >= 0 && len(passNodes) > 1 {
		fmt.Fprintf(&b, "// pass %d (device-wide barrier before the next pass;\n", p)
		b.WriteString("// the runtime dispatches all passes as one fused launch)\n")
	}
	fmt.Fprintf(&b, "__kernel void %s(\n%s)\n{\n", name, g.renderParams())
	fmt.Fprintf(&b, "    int nx = (int)%s[0];\n", dimsName)
	fmt.Fprintf(&b, "    int ny = (int)%s[1];\n", dimsName)
	b.WriteString("    int lx = get_local_id(0);\n")
	b.WriteString("    int ly = get_local_id(1);\n")
	b.WriteString("    int lid = ly * DFG_TILE_X + lx;\n")
	b.WriteString("    int lsz = DFG_TILE_X * DFG_TILE_Y;\n")
	b.WriteString("    int lidx = (ly + 1) * DFG_LW + (lx + 1);\n")
	b.WriteString("    int gid = (get_group_id(1) * DFG_TILE_Y + ly) * nx\n")
	b.WriteString("            + get_group_id(0) * DFG_TILE_X + lx;\n")
	b.WriteString("    int tbase = (get_group_id(1) * DFG_TILE_Y - 1) * nx\n")
	b.WriteString("              + get_group_id(0) * DFG_TILE_X - 1;\n")
	b.WriteString("    // (the host pads the 2D launch grid to tile multiples;\n")
	b.WriteString("    //  edge tiles mask their stores)\n")

	// Local declarations.
	for _, st := range stage {
		fmt.Fprintf(&b, "    __local float %s[DFG_LTILE];\n", st.Local)
	}
	if s.Temporal {
		for _, id := range s.FusedScratch {
			n := g.byID[id]
			fmt.Fprintf(&b, "    __local %s l_%s[3 * DFG_LTILE]; // temporal scratch: z-planes below/center/above\n",
				cTypeFor(n.Width), scratchName(id))
		}
	}

	indent := "    "
	if spec.Register > 1 {
		b.WriteString("    // register blocking: each work-item walks DFG_REG z-planes\n")
		b.WriteString("    #pragma unroll\n")
		b.WriteString("    for (int rb = 0; rb < DFG_REG; ++rb, gid += nx * ny, tbase += nx * ny) {\n")
		indent = "        "
	}

	// Stage-in + barrier.
	stageFn := "dfg_stage_tile"
	if s.VectorStage {
		stageFn = "dfg_stage_tile4"
	}
	if spec.Register > 1 && (len(stage) > 0 || s.Temporal) {
		fmt.Fprintf(&b, "%sbarrier(CLK_LOCAL_MEM_FENCE); // retire the previous plane's tile\n", indent)
	}
	for _, st := range stage {
		fmt.Fprintf(&b, "%s%s(%s, %s, tbase, nx, lid, lsz);\n", indent, stageFn, st.Local, st.Field)
	}

	if s.Temporal {
		// Producer pass: recompute over the three staged z-planes (halo
		// included) into local scratch, then barrier and run the
		// consumer pass against it.
		b.WriteString(indent + "// temporal fusion: recompute pass 0 over tile+halo into local\n")
		b.WriteString(indent + "// scratch (3 z-planes); pass 1 then reads every neighbourhood\n")
		b.WriteString(indent + "// from local memory — the global round-trip disappears.\n")
		b.WriteString(indent + "for (int t = lid; t < 3 * DFG_LTILE; t += lsz) {\n")
		b.WriteString(indent + "    int hgid = tbase + ((t / DFG_LTILE) - 1) * nx * ny\n")
		b.WriteString(indent + "             + ((t % DFG_LTILE) / DFG_LW) * nx + (t % DFG_LW);\n")
		for _, line := range g.schedStmts(ctx, 0, passNodes[0], "hgid", false) {
			b.WriteString(indent + "    ")
			b.WriteString(line)
			b.WriteString("\n")
		}
		b.WriteString(indent + "}\n")
		fmt.Fprintf(&b, "%sbarrier(CLK_LOCAL_MEM_FENCE);\n", indent)
		for _, line := range g.schedStmts(ctx, 1, passNodes[1], "gid", false) {
			b.WriteString(indent)
			b.WriteString(line)
			b.WriteString("\n")
		}
	} else {
		if len(stage) > 0 {
			fmt.Fprintf(&b, "%sbarrier(CLK_LOCAL_MEM_FENCE);\n", indent)
		}
		for _, line := range g.schedStmts(ctx, p, passNodes[p], "gid", false) {
			b.WriteString(indent)
			b.WriteString(line)
			b.WriteString("\n")
		}
	}

	if spec.Register > 1 {
		b.WriteString("    }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// dimsSourceName returns the dims source feeding the network's
// stencils (every stencil shares it; tiled kernels read nx/ny from it).
func (g *generator) dimsSourceName() string {
	for _, n := range g.order {
		if n.Info().Class == dataflow.ClassStencil {
			return n.Inputs[1]
		}
	}
	return "dims"
}

// stagedForPass lists the staged fields whose stencils run in pass p
// (p == -1: any pass), excluding temporally fused scratch.
func (g *generator) stagedForPass(passNodes [][]*dataflow.Node, p int) []passes.StagedField {
	fused := make(map[string]bool, len(g.sched.FusedScratch))
	for _, id := range g.sched.FusedScratch {
		fused[scratchName(id)] = true
	}
	want := make(map[string]bool)
	for pp, nodes := range passNodes {
		if p >= 0 && pp != p {
			continue
		}
		for _, n := range nodes {
			if n.Info().Class != dataflow.ClassStencil {
				continue
			}
			field := g.byID[n.Inputs[0]]
			name := field.ID
			if field.Filter != "source" {
				name = scratchName(field.ID)
			}
			want[name] = true
		}
	}
	var out []passes.StagedField
	for _, st := range g.sched.Staged {
		if want[st.Field] && !fused[st.Field] {
			out = append(out, st)
		}
	}
	return out
}

// schedStmts renders one pass's statements under the schedule. gidExpr
// is the linear element index expression ("gid", or "hgid" inside the
// temporal recompute loop); vec widens the body to the vector type.
func (g *generator) schedStmts(ctx *schedCtx, p int, nodes []*dataflow.Node, gidExpr string, vec bool) []string {
	s := g.sched
	inTemporalLoop := s.Temporal && p == 0
	scalarType := "float"
	if vec {
		scalarType = cTypeFor(s.Spec.Vector)
	}

	operand := func(id string) string {
		n := g.byID[id]
		switch {
		case n.Filter == "const":
			return cFloat(n.Value)
		case n.Filter == "source":
			if vec {
				return "v_" + id
			}
			return id + "[" + gidExpr + "]"
		case g.pass[id] < p:
			if ctx.fusedNode[id] {
				// Temporally fused: read the center plane of the local
				// scratch instead of a global array.
				return fmt.Sprintf("l_%s[DFG_LTILE + lidx]", scratchName(id))
			}
			return scratchName(id) + "[" + gidExpr + "]"
		default:
			return fmt.Sprintf("r%d", g.reg[id])
		}
	}

	var stmts []string
	for _, n := range nodes {
		if n.Filter == "source" || n.Filter == "const" {
			continue
		}
		r := g.reg[n.ID]
		switch n.Filter {
		case "grad3d", "grad3dx", "grad3dy", "grad3dz":
			field := g.byID[n.Inputs[0]]
			fieldArg := field.ID
			if field.Filter != "source" {
				fieldArg = scratchName(field.ID)
			}
			axis, isAxis := kernels.GradAxisOf(n.Filter)
			coord := ""
			if isAxis {
				coord = n.Inputs[2+axis]
			}
			switch {
			case ctx.fusedNode[field.ID] && !inTemporalLoop:
				// Stencil over temporally recomputed local scratch.
				if isAxis {
					ctx.needsAxisL = true
					stmts = append(stmts, fmt.Sprintf("float r%d = dfg_grad3d_axis_tloc(l_%s, %s, %s, %s, lidx, %d);",
						r, fieldArg, n.Inputs[1], coord, gidExpr, axis))
				} else {
					ctx.needsTloc = true
					stmts = append(stmts, fmt.Sprintf("float4 r%d = dfg_grad3d_tloc(l_%s, %s, %s, %s, %s, %s, lidx);",
						r, fieldArg, n.Inputs[1], n.Inputs[2], n.Inputs[3], n.Inputs[4], gidExpr))
				}
			case ctx.staged[fieldArg] && !inTemporalLoop:
				// Stencil over a tile staged from global memory.
				if isAxis {
					ctx.needsAxisT = true
					stmts = append(stmts, fmt.Sprintf("float r%d = dfg_grad3d_axis_tile(l_%s, %s, %s, %s, %s, lidx, %d);",
						r, fieldArg, fieldArg, n.Inputs[1], coord, gidExpr, axis))
				} else {
					ctx.needsTile = true
					stmts = append(stmts, fmt.Sprintf("float4 r%d = dfg_grad3d_tile(l_%s, %s, %s, %s, %s, %s, %s, lidx);",
						r, fieldArg, fieldArg, n.Inputs[1], n.Inputs[2], n.Inputs[3], n.Inputs[4], gidExpr))
				}
			default:
				// Flat global stencil (inside the temporal recompute
				// loop the staged tile does not cover the halo planes).
				if isAxis {
					ctx.needsAxisF = true
					stmts = append(stmts, fmt.Sprintf("float r%d = dfg_grad3d_axis(%s, %s, %s, %s, %d);",
						r, fieldArg, n.Inputs[1], coord, gidExpr, axis))
				} else {
					ctx.needsFlat = true
					stmts = append(stmts, fmt.Sprintf("float4 r%d = dfg_grad3d(%s, %s, %s, %s, %s, %s);",
						r, fieldArg, n.Inputs[1], n.Inputs[2], n.Inputs[3], n.Inputs[4], gidExpr))
				}
			}
		case "decompose":
			stmts = append(stmts, fmt.Sprintf("float r%d = %s.s%d;", r, operand(n.Inputs[0]), n.Comp))
		case "norm":
			in := operand(n.Inputs[0])
			stmts = append(stmts, fmt.Sprintf("float r%d = sqrt(%[2]s.s0*%[2]s.s0 + %[2]s.s1*%[2]s.s1 + %[2]s.s2*%[2]s.s2);", r, in))
		default:
			tmpl, ok := kernels.ExprTemplate(n.Filter)
			if !ok {
				stmts = append(stmts, fmt.Sprintf("/* no fusion rule for %s */", n.Filter))
				continue
			}
			exprs := make([]any, 0, len(n.Inputs))
			for _, in := range n.Inputs {
				exprs = append(exprs, operand(in))
			}
			stmts = append(stmts, fmt.Sprintf("%s r%d = %s;", scalarType, r, fmt.Sprintf(tmpl, exprs...)))
		}

		if g.materialize[n.ID] {
			label := scratchName(n.ID)
			if ctx.fusedNode[n.ID] {
				stmts = append(stmts, fmt.Sprintf("l_%s[t] = r%d;", label, r))
			} else {
				stmts = append(stmts, fmt.Sprintf("%s[%s] = r%d;", label, gidExpr, r))
			}
		}
	}

	if p == g.numPasses-1 {
		for i, root := range g.roots {
			expr := operand(root.ID)
			if vec {
				stmts = append(stmts, fmt.Sprintf("vstore%d(%s, %s, %s);", s.Spec.Vector, expr, gidExpr, g.outName(i)))
			} else {
				stmts = append(stmts, fmt.Sprintf("%s[%s] = %s;", g.outName(i), gidExpr, expr))
			}
		}
	}
	return stmts
}
