// Package codegen implements the paper's dynamic kernel generator: it
// fuses an entire dataflow network into a single generated OpenCL kernel
// (the "fusion" execution strategy). The generator provides every
// feature Section III-C.3 lists:
//
//   - per-element function calls for simple primitives (add, sub, ...),
//   - direct access to device global memory arrays for operations with
//     complex memory requirements (grad3d),
//   - source-code level insertion of constants,
//   - OpenCL vector types (float4) for operations returning multiple
//     values per element, and
//   - source-code level array-decompose as vector component selection
//     (val.s0, val.s1, ...).
//
// Intermediate results live in device registers. The one exception is
// the paper's Figure 2 scenario: when a stencil primitive consumes a
// *computed* value, that value must be materialized in a global scratch
// array before the stencil can read its neighbours. The generator then
// splits the fused kernel into ordered passes with a device-wide barrier
// between them — still a single kernel dispatch, at the cost of one
// problem-sized scratch array, which is exactly the extra memory the
// paper's Figure 2 charges to fusion.
package codegen

import (
	"fmt"
	"strconv"
	"strings"

	"dfg/internal/dataflow"
	"dfg/internal/ocl"
	"dfg/internal/passes"
)

// ArgKind classifies one buffer argument of a generated kernel.
type ArgKind int

const (
	// ArgSource is a host-provided input array (uploaded once).
	ArgSource ArgKind = iota
	// ArgScratch is a device-only intermediate the strategy must
	// allocate (problem-sized; never transferred).
	ArgScratch
	// ArgOut is the kernel's result array.
	ArgOut
)

// String names the argument kind.
func (k ArgKind) String() string {
	switch k {
	case ArgSource:
		return "source"
	case ArgScratch:
		return "scratch"
	case ArgOut:
		return "out"
	default:
		return fmt.Sprintf("ArgKind(%d)", int(k))
	}
}

// Arg describes one buffer argument of the generated kernel, in launch
// order.
type Arg struct {
	Kind ArgKind
	// Name is the source name ("u", "dims") or scratch label.
	Name string
	// Width is the element width in float32 components.
	Width int
}

// Program is a generated fused kernel: its OpenCL C source, the
// executable kernel for the simulated device, and the buffer argument
// plan the execution strategy binds.
//
// A multi-root super-network fuses to one kernel with several ArgOut
// buffers, in the same order as the network's Roots(); single-root
// networks keep exactly one ArgOut named "out", byte-identical to the
// historical generator output.
type Program struct {
	// Source is the complete generated OpenCL C source.
	Source string
	// Kernel executes the fusion (single dispatch; multiple passes only
	// in the materialization case).
	Kernel *ocl.Kernel
	// Args is the kernel's buffer argument order.
	Args []Arg
	// NumPasses is 1 unless materialization forced pass splits.
	NumPasses int
	// OutWidth is the primary output's element width (roots[0]).
	OutWidth int
	// OutWidths holds every root's element width, in Roots() order.
	// len(OutWidths) == 1 except for merged super-networks.
	OutWidths []int
	// Schedule is the canonical spec string of the schedule this program
	// was generated under ("" for the flat generator). FuseScheduled
	// sets it; plan caches and reports surface it.
	Schedule string
}

// opcodes of the executable plan.
type opcode int

const (
	opLoad opcode = iota // dst <- buf[gid] (width from instr.width)
	opConst
	opAdd
	opSub
	opMul
	opDiv
	opMin
	opMax
	opSqrt
	opNeg
	opAbs
	opExp
	opLog
	opSin
	opCos
	opPow
	opGt
	opLt
	opGe
	opLe
	opEq
	opNe
	opSelect
	opNorm
	opDecomp
	opGrad
	opGradAxis // single-axis gradient (instr.comp selects the axis)
	opStore    // buf[gid] <- a (width from instr.width)
)

// instr is one step of the per-element plan. Registers are slots of four
// float32 lanes; scalar values use lane 0.
type instr struct {
	op      opcode
	dst     int
	a, b, c int     // register operands
	buf     int     // buffer index for load/store
	width   int     // element width for load/store
	comp    int     // decompose component / gradient axis
	val     float32 // constant value
	gbufs   [5]int  // stencils: field, dims, x, y, z buffer indices
}

// Fuse generates the fused kernel program for a validated network with a
// designated output. name tags the generated kernel (e.g. "qcrit" gives
// "kfused_qcrit"). The executable plan runs in the default blocked mode.
func Fuse(net *dataflow.Network, name string) (*Program, error) {
	return FuseWithMode(net, name, ModeBlocked)
}

// FuseWithMode is Fuse with an explicit execution mode for the plan
// (the generated OpenCL source is identical either way; only the
// simulated device's executable differs). ModeElementwise exists as the
// ablation baseline for the blocked executor.
func FuseWithMode(net *dataflow.Network, name string, mode Mode) (*Program, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	order, err := net.TopoOrder()
	if err != nil {
		return nil, err
	}
	g := &generator{
		net:    net,
		name:   name,
		mode:   mode,
		order:  order,
		pass:   make(map[string]int),
		byID:   make(map[string]*dataflow.Node, len(order)),
		reg:    make(map[string]int),
		bufIdx: make(map[string]int),
	}
	for _, n := range order {
		g.byID[n.ID] = n
	}
	for _, r := range net.Roots() {
		g.roots = append(g.roots, g.byID[r])
	}
	if err := g.assignPasses(); err != nil {
		return nil, err
	}
	g.planArgs()
	g.allocRegisters()
	return g.emit()
}

// generator holds the fusion state.
type generator struct {
	net   *dataflow.Network
	name  string
	mode  Mode
	order []*dataflow.Node
	byID  map[string]*dataflow.Node

	// sched is the schedule annotation set FuseScheduled lowers against;
	// nil for the flat generator.
	sched *passes.Schedule

	// roots are the network's sink nodes (one per Roots() entry).
	roots []*dataflow.Node

	pass        map[string]int // node ID -> pass index
	numPasses   int
	materialize map[string]bool // node IDs needing global scratch

	args   []Arg
	bufIdx map[string]int // source name / scratch label -> arg position
	// virtWidths are the element widths of the temporal virtual scratch
	// views, indexed bufIdx position minus len(args): temporally fused
	// intermediates never become kernel arguments — the executable
	// appends per-chunk views for them at launch time.
	virtWidths []int

	reg     map[string]int // node ID -> register slot
	numRegs int
}

// scratchName labels the scratch buffer of a materialized node.
func scratchName(id string) string { return "scratch_" + id }

// outName names the i-th output argument: a single root keeps the
// historical "out", so single-root generated source stays byte-identical;
// super-network roots are numbered.
func (g *generator) outName(i int) string {
	if len(g.roots) == 1 {
		return "out"
	}
	return "out" + strconv.Itoa(i)
}

// outKey is the bufIdx key of the i-th output argument.
func (g *generator) outKey(i int) string {
	if len(g.roots) == 1 {
		return "__out__"
	}
	return "__out" + strconv.Itoa(i) + "__"
}

// assignPasses computes each node's pass and the materialization set.
// A stencil (grad3d or a single-axis variant) whose field input is
// computed must run at least one pass after that input; any value
// consumed in a later pass than it is computed in must be materialized
// to global scratch.
func (g *generator) assignPasses() error {
	g.materialize = make(map[string]bool)
	for _, n := range g.order {
		p := 0
		for _, in := range n.Inputs {
			if ip := g.pass[in]; ip > p {
				p = ip
			}
		}
		if n.Info().Class == dataflow.ClassStencil {
			field := g.byID[n.Inputs[0]]
			for _, in := range n.Inputs[1:] {
				if g.byID[in].Filter != "source" {
					return fmt.Errorf("codegen: %s input %q must be a source array (dims/coords cannot be computed)", n.Filter, in)
				}
			}
			if field.Filter != "source" {
				// The stencil reads neighbours of a computed value:
				// materialize it and synchronize before this pass.
				g.materialize[field.ID] = true
				if fp := g.pass[field.ID]; fp+1 > p {
					p = fp + 1
				}
			}
		}
		g.pass[n.ID] = p
	}
	// Cross-pass consumption also forces materialization.
	for _, n := range g.order {
		for _, in := range n.Inputs {
			src := g.byID[in]
			if src.Filter == "source" || src.Filter == "const" {
				continue // sources are global already; constants are literals
			}
			if g.pass[in] < g.pass[n.ID] {
				g.materialize[in] = true
			}
		}
	}
	g.numPasses = 0
	for _, r := range g.roots {
		if p := g.pass[r.ID] + 1; p > g.numPasses {
			g.numPasses = p
		}
	}
	// A root computed before the final pass is consumed by the final
	// store, so it must be materialized like any cross-pass value.
	for _, r := range g.roots {
		if r.Filter == "source" || r.Filter == "const" {
			continue
		}
		if g.pass[r.ID] < g.numPasses-1 {
			g.materialize[r.ID] = true
		}
	}
	return nil
}

// planArgs fixes the kernel's buffer argument order: live sources in
// network declaration order, then scratch buffers in topo order, then
// the output. Under a temporal schedule the fused intermediates drop
// out of the argument list entirely — they live in per-tile (simulated:
// per-chunk) virtual views the executable appends after the real
// arguments, so their bufIdx entries point past len(args).
func (g *generator) planArgs() {
	fused := make(map[string]bool)
	if g.sched != nil && g.sched.Temporal {
		for _, id := range g.sched.FusedScratch {
			fused[id] = true
		}
	}
	live := make(map[string]bool, len(g.order))
	for _, n := range g.order {
		live[n.ID] = true
	}
	for _, s := range g.net.Sources() {
		if live[s.ID] {
			g.bufIdx[s.ID] = len(g.args)
			g.args = append(g.args, Arg{Kind: ArgSource, Name: s.ID, Width: s.Width})
		}
	}
	for _, n := range g.order {
		if g.materialize[n.ID] && !fused[n.ID] {
			label := scratchName(n.ID)
			g.bufIdx[label] = len(g.args)
			g.args = append(g.args, Arg{Kind: ArgScratch, Name: label, Width: n.Width})
		}
	}
	for i, r := range g.roots {
		g.bufIdx[g.outKey(i)] = len(g.args)
		g.args = append(g.args, Arg{Kind: ArgOut, Name: g.outName(i), Width: r.Width})
	}
	for _, n := range g.order {
		if fused[n.ID] {
			g.bufIdx[scratchName(n.ID)] = len(g.args) + len(g.virtWidths)
			g.virtWidths = append(g.virtWidths, n.Width)
		}
	}
}

// allocRegisters gives every live node a register slot. In the emitted
// source, sources are read inline and constants are literals, but the
// executable plan keeps each in a register so loads happen once per
// element per pass.
func (g *generator) allocRegisters() {
	for _, n := range g.order {
		if _, ok := g.reg[n.ID]; !ok {
			g.reg[n.ID] = g.numRegs
			g.numRegs++
		}
	}
}

// cTypeFor returns the OpenCL C scalar/vector type of a width.
func cTypeFor(width int) string {
	if width == 1 {
		return "float"
	}
	return "float" + strconv.Itoa(width)
}

// cFloat renders a float constant as OpenCL C source.
func cFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 32)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s + "f"
}
