package codegen

import (
	"os"
	"strings"
	"testing"

	"dfg/internal/expr"
	"dfg/internal/vortex"
)

// TestQCritFusedSourceGolden pins the exact OpenCL C source the dynamic
// kernel generator emits for the Q-criterion network. Regenerate the
// golden file with:
//
//	go run ./cmd/dfg-fuse -preset qcrit > internal/codegen/testdata/qcrit_fused.cl
func TestQCritFusedSourceGolden(t *testing.T) {
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Fuse(net, "expr")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/qcrit_fused.cl")
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != string(want) {
		t.Fatalf("generated Q-criterion source drifted from the golden file.\n--- got ---\n%s", p.Source)
	}

	// Structural spot checks, so a regenerated golden file still gets
	// audited for the paper's §III-C.3 feature list.
	src := p.Source
	checks := map[string]string{
		"single kernel entry":       "__kernel void kfused_expr(",
		"gradient via global mem":   "dfg_grad3d(u, dims, x, y, z, gid)",
		"inlined constant":          "0.5f",
		"vector-typed intermediate": "float4 r",
		"component selection":       ".s0",
		"seven source args":         "__global const float *w",
	}
	for what, frag := range checks {
		if !strings.Contains(src, frag) {
			t.Errorf("golden source missing %s (%q)", what, frag)
		}
	}
	if got := strings.Count(src, "__kernel"); got != 1 {
		t.Errorf("Q-criterion fuses into exactly one kernel, found %d entries", got)
	}
	if got := strings.Count(src, "dfg_grad3d("); got < 3 {
		t.Errorf("three gradient calls expected, found %d", got)
	}
}

// TestFuseIsDeterministic: identical networks generate byte-identical
// source and argument plans (scheduling must not depend on map order).
func TestFuseIsDeterministic(t *testing.T) {
	for i := 0; i < 5; i++ {
		net, err := expr.Compile(vortex.QCritExpr)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := Fuse(net, "expr")
		if err != nil {
			t.Fatal(err)
		}
		p2, err := Fuse(net, "expr")
		if err != nil {
			t.Fatal(err)
		}
		if p1.Source != p2.Source {
			t.Fatal("re-fusing the same network produced different source")
		}
		for j := range p1.Args {
			if p1.Args[j] != p2.Args[j] {
				t.Fatalf("arg plan differs at %d", j)
			}
		}
	}
}
