package codegen

import (
	"math"
	"math/rand"
	"os"
	"strings"
	"testing"

	"dfg/internal/dataflow"
	"dfg/internal/expr"
	"dfg/internal/kernels"
	"dfg/internal/mesh"
	"dfg/internal/passes"
	"dfg/internal/vortex"
)

// gradMagExpr is the canonical two-pass expression for temporal-blocking
// tests: the stencil consumes a computed field, so the flat generator
// materializes m in global scratch and splits passes — exactly the
// round-trip temporal blocking deletes.
const gradMagExpr = vortex.GradMagExpr

// mustSpec parses a canonical schedule spec string.
func mustSpec(t *testing.T, text string) passes.ScheduleSpec {
	t.Helper()
	spec, err := passes.ParseScheduleSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// fuseScheduled lowers spec against the network and generates the
// scheduled program.
func fuseScheduled(t *testing.T, net *dataflow.Network, spec passes.ScheduleSpec) *Program {
	t.Helper()
	sched, err := passes.ComputeSchedule(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sched == nil {
		t.Fatalf("spec %v computed a flat schedule", spec)
	}
	p, err := FuseScheduled(net, "expr", sched)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// velocitySources binds the qcrit/gradmag source set on a mesh.
func velocitySources(m *mesh.Mesh, rng *rand.Rand) map[string][]float32 {
	x, y, z := m.CellCenterFields()
	s := map[string][]float32{
		"dims": kernels.DimsArray(m.Dims.NX, m.Dims.NY, m.Dims.NZ),
		"x":    x, "y": y, "z": z,
	}
	for _, name := range []string{"u", "v", "w"} {
		s[name] = randomField(rng, m.Cells())
	}
	return s
}

// assertBitwise requires got and want to match bit for bit — the
// schedule contract is zero-ULP identity, not tolerance.
func assertBitwise(t *testing.T, got, want []float32, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %v (0x%08x) want %v (0x%08x)",
				label, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// globalBytes is the modeled per-element global-memory traffic.
func globalBytes(p *Program) float64 {
	return p.Kernel.Cost.LoadBytes + p.Kernel.Cost.StoreBytes
}

func TestScheduledQCritBitwiseAndCost(t *testing.T) {
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Fuse(net, "expr")
	if err != nil {
		t.Fatal(err)
	}
	sched := fuseScheduled(t, net, mustSpec(t, "tile=16x16,reg=2,vec=4"))

	// The flat program's cost must be untouched by the schedule layer.
	if flat.Kernel.Cost.LocalBytes != 0 || flat.Kernel.Cost.VectorWidth != 0 {
		t.Fatalf("flat cost gained schedule terms: %+v", flat.Kernel.Cost)
	}
	if flat.Schedule != "" {
		t.Fatalf("flat program carries schedule tag %q", flat.Schedule)
	}
	if sched.Schedule != "tile=16x16,reg=2,vec=4" {
		t.Fatalf("schedule tag = %q", sched.Schedule)
	}
	// Tiling must move stencil traffic off global memory: strictly fewer
	// modeled global bytes, with the difference showing up as local
	// traffic (the issue's acceptance criterion).
	if gb, fb := globalBytes(sched), globalBytes(flat); gb >= fb {
		t.Fatalf("tiled qcrit global bytes %v not < flat %v", gb, fb)
	}
	if sched.Kernel.Cost.LocalBytes <= 0 {
		t.Fatalf("tiled qcrit has no local traffic: %+v", sched.Kernel.Cost)
	}
	if sched.Kernel.Cost.Flops != flat.Kernel.Cost.Flops {
		t.Fatalf("tiling must not change flops: %v vs %v", sched.Kernel.Cost.Flops, flat.Kernel.Cost.Flops)
	}

	m := mesh.MustUniform(mesh.Dims{NX: 12, NY: 10, NZ: 6}, 0.5, 0.25, 1)
	rng := rand.New(rand.NewSource(7))
	srcs := velocitySources(m, rng)
	want := runProgram(t, flat, m.Cells(), srcs)
	got := runProgram(t, sched, m.Cells(), srcs)
	assertBitwise(t, got, want, "tiled qcrit")
}

func TestScheduledVelMagVectorized(t *testing.T) {
	net, err := expr.Compile(vortex.VelMagExpr)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Fuse(net, "expr")
	if err != nil {
		t.Fatal(err)
	}
	sched := fuseScheduled(t, net, mustSpec(t, "vec=4"))

	if sched.Kernel.Cost.VectorWidth != 4 {
		t.Fatalf("vectorized velmag cost width = %d want 4", sched.Kernel.Cost.VectorWidth)
	}
	// Vector loads reshape access, not volume: byte counts are identical.
	if globalBytes(sched) != globalBytes(flat) {
		t.Fatalf("vectorization changed byte counts: %v vs %v", globalBytes(sched), globalBytes(flat))
	}
	for _, frag := range []string{"vload4(", "vstore4("} {
		if !strings.Contains(sched.Source, frag) {
			t.Errorf("vectorized source missing %q:\n%s", frag, sched.Source)
		}
	}

	rng := rand.New(rand.NewSource(8))
	const n = 4096
	srcs := map[string][]float32{
		"u": randomField(rng, n), "v": randomField(rng, n), "w": randomField(rng, n),
	}
	want := runProgram(t, flat, n, srcs)
	got := runProgram(t, sched, n, srcs)
	assertBitwise(t, got, want, "vectorized velmag")
}

func TestScheduledTemporalGradMag(t *testing.T) {
	net, err := expr.Compile(gradMagExpr)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Fuse(net, "expr")
	if err != nil {
		t.Fatal(err)
	}
	if flat.NumPasses != 2 {
		t.Fatalf("gradmag must split into 2 flat passes, got %d", flat.NumPasses)
	}
	sched := fuseScheduled(t, net, passes.DefaultSchedule())

	// Temporal blocking fuses the passes and drops the global scratch
	// argument: the intermediate lives in per-tile local memory.
	if sched.NumPasses != 1 {
		t.Fatalf("temporal gradmag runs 1 fused phase, got %d", sched.NumPasses)
	}
	for _, a := range sched.Args {
		if a.Kind == ArgScratch {
			t.Fatalf("temporal schedule must drop the scratch argument: %v", sched.Args)
		}
	}
	if gb, fb := globalBytes(sched), globalBytes(flat); gb >= fb {
		t.Fatalf("temporal gradmag global bytes %v not < flat %v", gb, fb)
	}
	// Halo recompute costs extra flops — the model must charge them.
	if sched.Kernel.Cost.Flops <= flat.Kernel.Cost.Flops {
		t.Fatalf("temporal blocking must charge halo recompute flops: %v vs %v",
			sched.Kernel.Cost.Flops, flat.Kernel.Cost.Flops)
	}

	m := mesh.MustUniform(mesh.Dims{NX: 10, NY: 7, NZ: 5}, 0.3, 0.7, 0.9)
	rng := rand.New(rand.NewSource(9))
	srcs := velocitySources(m, rng)
	want := runProgram(t, flat, m.Cells(), srcs)
	got := runProgram(t, sched, m.Cells(), srcs)
	assertBitwise(t, got, want, "temporal gradmag")
}

// TestScheduledSourceGoldens pins the emitted scheduled OpenCL C source
// per transformation. Regenerate with:
//
//	go run ./cmd/dfg-fuse -preset qcrit  -schedule tile=16x16,reg=2,vec=4 > internal/codegen/testdata/qcrit_tiled.cl
//	go run ./cmd/dfg-fuse -preset velmag -schedule vec=4                  > internal/codegen/testdata/velmag_vec4.cl
//	go run ./cmd/dfg-fuse -preset gradmag -schedule tiled                 > internal/codegen/testdata/gradmag_temporal.cl
func TestScheduledSourceGoldens(t *testing.T) {
	cases := []struct {
		golden string
		text   string
		spec   string
		frags  []string
	}{
		{
			golden: "qcrit_tiled.cl",
			text:   vortex.QCritExpr,
			spec:   "tile=16x16,reg=2,vec=4",
			frags: []string{
				"#define DFG_TILE_X 16",
				"__local float l_u[DFG_LTILE]",
				"dfg_stage_tile4(l_u, u,",
				"dfg_grad3d_tile(l_u, u,",
				"barrier(CLK_LOCAL_MEM_FENCE)",
				"#pragma unroll",
			},
		},
		{
			golden: "velmag_vec4.cl",
			text:   vortex.VelMagExpr,
			spec:   "vec=4",
			frags: []string{
				"float4 v_u = vload4(gid, u);",
				"vstore4(",
			},
		},
		{
			golden: "gradmag_temporal.cl",
			text:   gradMagExpr,
			spec:   "tile=16x16,reg=2,vec=4,temporal",
			frags: []string{
				"__local float l_scratch_",
				"dfg_grad3d_tloc(",
				"passes fused per tile",
			},
		},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			net, err := expr.Compile(c.text)
			if err != nil {
				t.Fatal(err)
			}
			p := fuseScheduled(t, net, mustSpec(t, c.spec))
			want, err := os.ReadFile("testdata/" + c.golden)
			if err != nil {
				t.Fatal(err)
			}
			if p.Source != string(want) {
				t.Fatalf("scheduled source drifted from %s.\n--- got ---\n%s", c.golden, p.Source)
			}
			if !strings.Contains(p.Source, "// schedule: "+c.spec) {
				t.Errorf("source header must name the schedule %q", c.spec)
			}
			for _, frag := range c.frags {
				if !strings.Contains(p.Source, frag) {
					t.Errorf("%s missing %q", c.golden, frag)
				}
			}
		})
	}
}

// TestFuseScheduledNilFallsThrough: a nil schedule is the flat program.
func TestFuseScheduledNilFallsThrough(t *testing.T) {
	net := buildVelMag(t)
	flat, err := Fuse(net, "velmag")
	if err != nil {
		t.Fatal(err)
	}
	p, err := FuseScheduled(net, "velmag", nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != flat.Source || p.Schedule != "" {
		t.Fatal("nil schedule must produce the flat program")
	}
}

// TestFuseScheduledDeterministic: scheduled generation is byte-stable.
func TestFuseScheduledDeterministic(t *testing.T) {
	net, err := expr.Compile(vortex.QCritExpr)
	if err != nil {
		t.Fatal(err)
	}
	a := fuseScheduled(t, net, mustSpec(t, "tiled"))
	b := fuseScheduled(t, net, mustSpec(t, "tiled"))
	if a.Source != b.Source {
		t.Fatal("scheduled source generation is nondeterministic")
	}
}
