package codegen

import (
	"fmt"
	"math"
	"strings"

	"dfg/internal/dataflow"
	"dfg/internal/kernels"
	"dfg/internal/ocl"
)

// emit renders the OpenCL C source and builds the executable plan.
func (g *generator) emit() (*Program, error) {
	// Group live nodes by pass, preserving topological order.
	passNodes := make([][]*dataflow.Node, g.numPasses)
	for _, n := range g.order {
		p := g.pass[n.ID]
		passNodes[p] = append(passNodes[p], n)
	}

	var (
		passFns []ocl.KernelFunc
		bodies  []string
		cost    ocl.Cost
	)
	for p := 0; p < g.numPasses; p++ {
		body, fn, passCost, err := g.emitPass(p, passNodes[p])
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
		passFns = append(passFns, fn)
		cost = cost.Add(passCost)
	}

	src := g.renderSource(bodies)
	kname := "kfused_" + g.name
	k := &ocl.Kernel{
		Name:    kname,
		Source:  src,
		NumBufs: len(g.args),
		Cost:    cost,
		Passes:  passFns,
	}
	widths := make([]int, len(g.roots))
	for i, r := range g.roots {
		widths[i] = r.Width
	}
	return &Program{
		Source:    src,
		Kernel:    k,
		Args:      append([]Arg(nil), g.args...),
		NumPasses: g.numPasses,
		OutWidth:  widths[0],
		OutWidths: widths,
	}, nil
}

// emitPass produces one pass's C body, executable function and cost.
func (g *generator) emitPass(p int, nodes []*dataflow.Node) (string, ocl.KernelFunc, ocl.Cost, error) {
	var (
		stmts  []string
		plan   []instr
		cost   ocl.Cost
		loaded = make(map[string]bool) // node IDs already in registers this pass
	)

	// operand resolves an input to (C expression, register) and appends
	// any load instruction the plan needs.
	operand := func(id string) (string, int, error) {
		n := g.byID[id]
		r := g.reg[id]
		switch {
		case n.Filter == "const":
			if !loaded[id] {
				plan = append(plan, instr{op: opConst, dst: r, val: float32(n.Value)})
				loaded[id] = true
			}
			return cFloat(n.Value), r, nil
		case n.Filter == "source":
			if !loaded[id] {
				plan = append(plan, instr{op: opLoad, dst: r, buf: g.bufIdx[id], width: 1})
				loaded[id] = true
				cost.LoadBytes += 4
			}
			return id + "[gid]", r, nil
		case g.pass[id] < p:
			// Computed in an earlier pass: read back from scratch.
			label := scratchName(id)
			if !loaded[id] {
				plan = append(plan, instr{op: opLoad, dst: r, buf: g.bufIdx[label], width: n.Width})
				loaded[id] = true
				cost.LoadBytes += float64(4 * n.Width)
			}
			return label + "[gid]", r, nil
		default:
			return fmt.Sprintf("r%d", r), r, nil
		}
	}

	for _, n := range nodes {
		if n.Filter == "source" || n.Filter == "const" {
			continue // realized on demand by operand()
		}
		r := g.reg[n.ID]
		switch n.Filter {
		case "grad3d", "grad3dx", "grad3dy", "grad3dz":
			field := g.byID[n.Inputs[0]]
			fieldArg := field.ID
			if field.Filter != "source" {
				fieldArg = scratchName(field.ID)
			}
			var gb [5]int
			gb[0] = g.bufIdx[fieldArg]
			names := []string{fieldArg}
			for i, in := range n.Inputs[1:] {
				gb[i+1] = g.bufIdx[in]
				names = append(names, in)
			}
			if axis, ok := kernels.GradAxisOf(n.Filter); ok {
				// Single-axis stencil: a scalar result in a register,
				// reading only the one coordinate array it differences
				// against.
				stmts = append(stmts, fmt.Sprintf("float r%d = dfg_grad3d_axis(%s, %s, %s, gid, %d);",
					r, names[0], names[1], names[2+axis], axis))
				plan = append(plan, instr{op: opGradAxis, dst: r, comp: axis, gbufs: gb})
				cost = cost.Add(kernels.GradAxisCost())
				cost.StoreBytes -= 4 // the fused gradient component stays in a register
			} else {
				stmts = append(stmts, fmt.Sprintf("float4 r%d = dfg_grad3d(%s, gid);", r, strings.Join(names, ", ")))
				plan = append(plan, instr{op: opGrad, dst: r, gbufs: gb})
				cost = cost.Add(kernels.GradCost())
				cost.StoreBytes -= 16 // the fused gradient stays in a register
			}
		case "decompose":
			inExpr, a, err := operand(n.Inputs[0])
			if err != nil {
				return "", nil, cost, err
			}
			stmts = append(stmts, fmt.Sprintf("float r%d = %s.s%d;", r, inExpr, n.Comp))
			plan = append(plan, instr{op: opDecomp, dst: r, a: a, comp: n.Comp})
		case "norm":
			inExpr, a, err := operand(n.Inputs[0])
			if err != nil {
				return "", nil, cost, err
			}
			stmts = append(stmts, fmt.Sprintf("float r%d = sqrt(%[2]s.s0*%[2]s.s0 + %[2]s.s1*%[2]s.s1 + %[2]s.s2*%[2]s.s2);", r, inExpr))
			plan = append(plan, instr{op: opNorm, dst: r, a: a})
			cost.Flops += 6
		default:
			tmpl, ok := kernels.ExprTemplate(n.Filter)
			if !ok {
				return "", nil, cost, fmt.Errorf("codegen: no fusion rule for filter %q", n.Filter)
			}
			exprs := make([]any, 0, len(n.Inputs))
			regs := make([]int, 0, len(n.Inputs))
			for _, in := range n.Inputs {
				e, a, err := operand(in)
				if err != nil {
					return "", nil, cost, err
				}
				exprs = append(exprs, e)
				regs = append(regs, a)
			}
			stmts = append(stmts, fmt.Sprintf("float r%d = %s;", r, fmt.Sprintf(tmpl, exprs...)))
			in := instr{op: opFor(n.Filter), dst: r, a: regs[0]}
			if len(regs) > 1 {
				in.b = regs[1]
			}
			if len(regs) > 2 {
				in.c = regs[2]
			}
			plan = append(plan, in)
			cost.Flops++
		}

		if g.materialize[n.ID] {
			label := scratchName(n.ID)
			stmts = append(stmts, fmt.Sprintf("%s[gid] = r%d;", label, r))
			plan = append(plan, instr{op: opStore, a: r, buf: g.bufIdx[label], width: n.Width})
			cost.StoreBytes += float64(4 * n.Width)
		}
	}

	if p == g.numPasses-1 {
		// Final store of every root (a single "out" for ordinary
		// networks, one numbered output per member for super-networks).
		for i, root := range g.roots {
			expr, a, err := operand(root.ID)
			if err != nil {
				return "", nil, cost, err
			}
			stmts = append(stmts, fmt.Sprintf("%s[gid] = %s;", g.outName(i), expr))
			plan = append(plan, instr{op: opStore, a: a, buf: g.bufIdx[g.outKey(i)], width: root.Width})
			cost.StoreBytes += float64(4 * root.Width)
		}
	}

	var b strings.Builder
	for _, s := range stmts {
		b.WriteString("    ")
		b.WriteString(s)
		b.WriteString("\n")
	}
	fn := makeBlockPassFn(plan, g.numRegs)
	if g.mode == ModeElementwise {
		fn = makePassFn(plan, g.numRegs)
	}
	return b.String(), fn, cost, nil
}

// opFor maps an elementwise filter name to its opcode.
func opFor(filter string) opcode {
	switch filter {
	case "add":
		return opAdd
	case "sub":
		return opSub
	case "mul":
		return opMul
	case "div":
		return opDiv
	case "min":
		return opMin
	case "max":
		return opMax
	case "sqrt":
		return opSqrt
	case "neg":
		return opNeg
	case "abs":
		return opAbs
	case "exp":
		return opExp
	case "log":
		return opLog
	case "sin":
		return opSin
	case "cos":
		return opCos
	case "pow":
		return opPow
	case "gt":
		return opGt
	case "lt":
		return opLt
	case "ge":
		return opGe
	case "le":
		return opLe
	case "eq":
		return opEq
	case "ne":
		return opNe
	case "select":
		return opSelect
	default:
		panic("codegen: opFor on non-elementwise filter " + filter)
	}
}

// renderSource assembles the complete OpenCL C source: the shared
// primitive functions, then one kernel entry per pass (a single entry in
// the common fully-fused case).
func (g *generator) renderSource(bodies []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// fused derived-field kernel %q generated by dfg/codegen\n", g.name)
	fmt.Fprintf(&b, "// %d pass(es); intermediate results in device registers\n", len(bodies))
	if g.usesGrad() {
		b.WriteString("\n")
		b.WriteString(kernels.Grad3DFunction)
		if g.usesGradAxis() {
			b.WriteString("\n")
			b.WriteString(kernels.Grad3DAxisFunction)
		}
	}
	params := g.renderParams()
	for p, body := range bodies {
		name := "kfused_" + g.name
		if len(bodies) > 1 {
			name = fmt.Sprintf("%s_pass%d", name, p)
			fmt.Fprintf(&b, "\n// pass %d (device-wide barrier before the next pass;\n", p)
			b.WriteString("// the runtime dispatches all passes as one fused launch)\n")
		} else {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "__kernel void %s(\n%s)\n{\n    int gid = get_global_id(0);\n", name, params)
		b.WriteString(body)
		b.WriteString("}\n")
	}
	return b.String()
}

// renderParams renders the kernel parameter list from the arg plan.
func (g *generator) renderParams() string {
	lines := make([]string, len(g.args))
	for i, a := range g.args {
		qual := "__global const "
		if a.Kind != ArgSource {
			qual = "__global " // scratch is written then read; out is written
		}
		lines[i] = fmt.Sprintf("    %s%s *%s", qual, cTypeFor(a.Width), a.Name)
	}
	return strings.Join(lines, ",\n")
}

// usesGrad reports whether any live node is a stencil (full or
// single-axis gradient; both need the dfg_axis_diff helper).
func (g *generator) usesGrad() bool {
	for _, n := range g.order {
		if n.Info().Class == dataflow.ClassStencil {
			return true
		}
	}
	return false
}

// usesGradAxis reports whether any live node is a single-axis gradient.
func (g *generator) usesGradAxis() bool {
	for _, n := range g.order {
		if _, ok := kernels.GradAxisOf(n.Filter); ok {
			return true
		}
	}
	return false
}

// sqrt32 is a float32 square root (math.Sqrt round-trips exactly for
// float32 inputs).
func sqrt32(v float32) float32 {
	return float32(math.Sqrt(float64(v)))
}

// cmp2f encodes a comparison result as the 1.0/0.0 convention shared
// with the standalone comparison kernels.
func cmp2f(b bool) float32 {
	if b {
		return 1
	}
	return 0
}

// makePassFn compiles one pass's plan into an executable kernel body.
func makePassFn(plan []instr, numRegs int) ocl.KernelFunc {
	return func(lo, hi int, bufs []ocl.View, _ []float64) {
		regs := make([]float32, numRegs*4)
		for gid := lo; gid < hi; gid++ {
			for _, in := range plan {
				switch in.op {
				case opLoad:
					if in.width == 1 {
						regs[in.dst*4] = bufs[in.buf].Data[gid]
					} else {
						copy(regs[in.dst*4:in.dst*4+in.width], bufs[in.buf].Data[gid*in.width:gid*in.width+in.width])
					}
				case opConst:
					regs[in.dst*4] = in.val
				case opAdd:
					regs[in.dst*4] = regs[in.a*4] + regs[in.b*4]
				case opSub:
					regs[in.dst*4] = regs[in.a*4] - regs[in.b*4]
				case opMul:
					regs[in.dst*4] = regs[in.a*4] * regs[in.b*4]
				case opDiv:
					regs[in.dst*4] = regs[in.a*4] / regs[in.b*4]
				case opMin:
					a, b := regs[in.a*4], regs[in.b*4]
					if b < a {
						a = b
					}
					regs[in.dst*4] = a
				case opMax:
					a, b := regs[in.a*4], regs[in.b*4]
					if b > a {
						a = b
					}
					regs[in.dst*4] = a
				case opSqrt:
					regs[in.dst*4] = sqrt32(regs[in.a*4])
				case opNeg:
					regs[in.dst*4] = -regs[in.a*4]
				case opAbs:
					v := regs[in.a*4]
					if v < 0 {
						v = -v
					}
					regs[in.dst*4] = v
				case opExp:
					regs[in.dst*4] = float32(math.Exp(float64(regs[in.a*4])))
				case opLog:
					regs[in.dst*4] = float32(math.Log(float64(regs[in.a*4])))
				case opSin:
					regs[in.dst*4] = float32(math.Sin(float64(regs[in.a*4])))
				case opCos:
					regs[in.dst*4] = float32(math.Cos(float64(regs[in.a*4])))
				case opPow:
					regs[in.dst*4] = float32(math.Pow(float64(regs[in.a*4]), float64(regs[in.b*4])))
				case opGt:
					regs[in.dst*4] = cmp2f(regs[in.a*4] > regs[in.b*4])
				case opLt:
					regs[in.dst*4] = cmp2f(regs[in.a*4] < regs[in.b*4])
				case opGe:
					regs[in.dst*4] = cmp2f(regs[in.a*4] >= regs[in.b*4])
				case opLe:
					regs[in.dst*4] = cmp2f(regs[in.a*4] <= regs[in.b*4])
				case opEq:
					regs[in.dst*4] = cmp2f(regs[in.a*4] == regs[in.b*4])
				case opNe:
					regs[in.dst*4] = cmp2f(regs[in.a*4] != regs[in.b*4])
				case opSelect:
					if regs[in.a*4] != 0 {
						regs[in.dst*4] = regs[in.b*4]
					} else {
						regs[in.dst*4] = regs[in.c*4]
					}
				case opNorm:
					x, y, z := float64(regs[in.a*4]), float64(regs[in.a*4+1]), float64(regs[in.a*4+2])
					regs[in.dst*4] = float32(math.Sqrt(x*x + y*y + z*z))
				case opDecomp:
					regs[in.dst*4] = regs[in.a*4+in.comp]
				case opGrad:
					field := bufs[in.gbufs[0]].Data
					dims := bufs[in.gbufs[1]].Data
					x := bufs[in.gbufs[2]].Data
					y := bufs[in.gbufs[3]].Data
					z := bufs[in.gbufs[4]].Data
					gx, gy, gz := kernels.GradAt(field, x, y, z, int(dims[0]), int(dims[1]), int(dims[2]), gid)
					regs[in.dst*4] = gx
					regs[in.dst*4+1] = gy
					regs[in.dst*4+2] = gz
					regs[in.dst*4+3] = 0
				case opGradAxis:
					field := bufs[in.gbufs[0]].Data
					dims := bufs[in.gbufs[1]].Data
					x := bufs[in.gbufs[2]].Data
					y := bufs[in.gbufs[3]].Data
					z := bufs[in.gbufs[4]].Data
					regs[in.dst*4] = kernels.GradAxisAt(field, x, y, z, int(dims[0]), int(dims[1]), int(dims[2]), gid, in.comp)
				case opStore:
					if in.width == 1 {
						bufs[in.buf].Data[gid] = regs[in.a*4]
					} else {
						copy(bufs[in.buf].Data[gid*in.width:gid*in.width+in.width], regs[in.a*4:in.a*4+in.width])
					}
				}
			}
		}
	}
}
