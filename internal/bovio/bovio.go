// Package bovio reads and writes BOV ("Brick of Values") data sets — the
// minimal raw-brick format VisIt uses for exactly the kind of files the
// paper's RT simulation data ships in: a small text header (.bov)
// describing a binary brick of float32 values. Supporting BOV lets the
// framework run on real user data instead of the synthetic generator.
//
// The supported subset is the common zonal float32 single-brick layout:
//
//	TIME: 0
//	DATA_FILE: u.values
//	DATA_SIZE: 192 192 256
//	DATA_FORMAT: FLOAT
//	VARIABLE: u
//	DATA_ENDIAN: LITTLE
//	CENTERING: zonal
//	BRICK_ORIGIN: 0.0 0.0 0.0
//	BRICK_SIZE: 1.0 1.0 1.333
package bovio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dfg/internal/mesh"
)

// Header is a BOV text header.
type Header struct {
	// DataFile is the binary brick's path, relative to the header file.
	DataFile string
	// Size is the brick's zone (cell) extent.
	Size mesh.Dims
	// Variable names the field.
	Variable string
	// Origin and BrickSize position the brick in physical space.
	Origin    [3]float32
	BrickSize [3]float32
	// Time is the data set's time value.
	Time float64
}

// ParseHeader reads a BOV header. Unknown keys are ignored (BOV headers
// accumulate tool-specific keys); unsupported values of known keys fail.
func ParseHeader(r io.Reader) (Header, error) {
	h := Header{BrickSize: [3]float32{1, 1, 1}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, found := strings.Cut(line, ":")
		if !found {
			return h, fmt.Errorf("bovio: malformed header line %q", line)
		}
		key = strings.ToUpper(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "DATA_FILE":
			h.DataFile = val
		case "DATA_SIZE":
			var d mesh.Dims
			if _, err := fmt.Sscanf(val, "%d %d %d", &d.NX, &d.NY, &d.NZ); err != nil {
				return h, fmt.Errorf("bovio: bad DATA_SIZE %q", val)
			}
			h.Size = d
		case "DATA_FORMAT":
			if !strings.EqualFold(val, "FLOAT") {
				return h, fmt.Errorf("bovio: unsupported DATA_FORMAT %q (only FLOAT)", val)
			}
		case "VARIABLE":
			h.Variable = strings.Trim(val, `"`)
		case "DATA_ENDIAN":
			if !strings.EqualFold(val, "LITTLE") {
				return h, fmt.Errorf("bovio: unsupported DATA_ENDIAN %q (only LITTLE)", val)
			}
		case "CENTERING":
			if !strings.EqualFold(val, "zonal") {
				return h, fmt.Errorf("bovio: unsupported CENTERING %q (only zonal)", val)
			}
		case "BRICK_ORIGIN":
			if err := parse3(val, &h.Origin); err != nil {
				return h, fmt.Errorf("bovio: bad BRICK_ORIGIN %q", val)
			}
		case "BRICK_SIZE":
			if err := parse3(val, &h.BrickSize); err != nil {
				return h, fmt.Errorf("bovio: bad BRICK_SIZE %q", val)
			}
		case "TIME":
			t, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return h, fmt.Errorf("bovio: bad TIME %q", val)
			}
			h.Time = t
		}
	}
	if err := sc.Err(); err != nil {
		return h, err
	}
	if h.DataFile == "" {
		return h, fmt.Errorf("bovio: header missing DATA_FILE")
	}
	if err := h.Size.Validate(); err != nil {
		return h, fmt.Errorf("bovio: header missing or invalid DATA_SIZE: %w", err)
	}
	return h, nil
}

func parse3(val string, out *[3]float32) error {
	_, err := fmt.Sscanf(val, "%f %f %f", &out[0], &out[1], &out[2])
	return err
}

// Mesh builds the brick's uniform rectilinear mesh from the header's
// origin and physical size.
func (h Header) Mesh() (*mesh.Mesh, error) {
	m, err := mesh.NewUniform(h.Size,
		h.BrickSize[0]/float32(h.Size.NX),
		h.BrickSize[1]/float32(h.Size.NY),
		h.BrickSize[2]/float32(h.Size.NZ))
	if err != nil {
		return nil, err
	}
	for i := range m.X {
		m.X[i] += h.Origin[0]
	}
	for j := range m.Y {
		m.Y[j] += h.Origin[1]
	}
	for k := range m.Z {
		m.Z[k] += h.Origin[2]
	}
	return m, nil
}

// Read loads a BOV data set: the header at headerPath plus its binary
// brick (resolved relative to the header's directory).
func Read(headerPath string) (Header, []float32, error) {
	hf, err := os.Open(headerPath)
	if err != nil {
		return Header{}, nil, err
	}
	defer hf.Close()
	h, err := ParseHeader(hf)
	if err != nil {
		return h, nil, fmt.Errorf("%s: %w", headerPath, err)
	}

	dataPath := h.DataFile
	if !filepath.IsAbs(dataPath) {
		dataPath = filepath.Join(filepath.Dir(headerPath), dataPath)
	}
	raw, err := os.ReadFile(dataPath)
	if err != nil {
		return h, nil, err
	}
	n := h.Size.Cells()
	if len(raw) != 4*n {
		return h, nil, fmt.Errorf("bovio: %s holds %d bytes, brick needs %d", dataPath, len(raw), 4*n)
	}
	data := make([]float32, n)
	for i := 0; i < n; i++ {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return h, data, nil
}

// Write stores a BOV data set: headerPath gets the text header and the
// brick goes to the header's DataFile (or "<base>.values" if unset),
// beside the header.
func Write(headerPath string, h Header, data []float32) error {
	if len(data) != h.Size.Cells() {
		return fmt.Errorf("bovio: %d values for a %v brick", len(data), h.Size)
	}
	if h.DataFile == "" {
		base := strings.TrimSuffix(filepath.Base(headerPath), filepath.Ext(headerPath))
		h.DataFile = base + ".values"
	}
	if h.Variable == "" {
		h.Variable = "field"
	}
	if h.BrickSize == ([3]float32{}) {
		h.BrickSize = [3]float32{1, 1, 1}
	}

	var hdr strings.Builder
	fmt.Fprintf(&hdr, "TIME: %g\n", h.Time)
	fmt.Fprintf(&hdr, "DATA_FILE: %s\n", h.DataFile)
	fmt.Fprintf(&hdr, "DATA_SIZE: %d %d %d\n", h.Size.NX, h.Size.NY, h.Size.NZ)
	hdr.WriteString("DATA_FORMAT: FLOAT\n")
	fmt.Fprintf(&hdr, "VARIABLE: %s\n", h.Variable)
	hdr.WriteString("DATA_ENDIAN: LITTLE\nCENTERING: zonal\n")
	fmt.Fprintf(&hdr, "BRICK_ORIGIN: %g %g %g\n", h.Origin[0], h.Origin[1], h.Origin[2])
	fmt.Fprintf(&hdr, "BRICK_SIZE: %g %g %g\n", h.BrickSize[0], h.BrickSize[1], h.BrickSize[2])
	if err := os.WriteFile(headerPath, []byte(hdr.String()), 0o644); err != nil {
		return err
	}

	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	return os.WriteFile(filepath.Join(filepath.Dir(headerPath), filepath.Base(h.DataFile)), raw, 0o644)
}
