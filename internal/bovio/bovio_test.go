package bovio

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dfg/internal/mesh"
)

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	h := Header{
		Size:      mesh.Dims{NX: 6, NY: 5, NZ: 4},
		Variable:  "u",
		Origin:    [3]float32{1, 2, 3},
		BrickSize: [3]float32{2, 2.5, 4},
		Time:      7.5,
	}
	data := make([]float32, h.Size.Cells())
	for i := range data {
		data[i] = rng.Float32()*10 - 5
	}
	path := filepath.Join(dir, "u.bov")
	if err := Write(path, h, data); err != nil {
		t.Fatal(err)
	}

	back, got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size != h.Size || back.Variable != "u" || back.Time != 7.5 {
		t.Fatalf("header round trip: %+v", back)
	}
	if back.Origin != h.Origin || back.BrickSize != h.BrickSize {
		t.Fatalf("geometry round trip: %+v", back)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("data[%d] = %v want %v (binary float32 must round-trip exactly)", i, got[i], data[i])
		}
	}
}

func TestHeaderMesh(t *testing.T) {
	h := Header{
		Size:      mesh.Dims{NX: 4, NY: 2, NZ: 2},
		Origin:    [3]float32{10, 0, -1},
		BrickSize: [3]float32{4, 1, 2},
	}
	m, err := h.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	if m.X[0] != 10 || m.X[4] != 14 {
		t.Fatalf("x coords: %v", m.X)
	}
	if m.Z[0] != -1 || m.Z[2] != 1 {
		t.Fatalf("z coords: %v", m.Z)
	}
	if _, err := (Header{Size: mesh.Dims{NX: 0, NY: 1, NZ: 1}}).Mesh(); err == nil {
		t.Fatal("invalid size must fail")
	}
}

func TestParseHeaderErrors(t *testing.T) {
	cases := []string{
		"",                                 // missing everything
		"DATA_FILE: u.values\n",            // missing size
		"DATA_SIZE: 2 2 2\n",               // missing data file
		"garbage line without separator\n", // malformed
		"DATA_FILE: u\nDATA_SIZE: x y z\n", // bad size
		"DATA_FILE: u\nDATA_SIZE: 2 2 2\nDATA_FORMAT: DOUBLE\n", // unsupported format
		"DATA_FILE: u\nDATA_SIZE: 2 2 2\nDATA_ENDIAN: BIG\n",    // unsupported endian
		"DATA_FILE: u\nDATA_SIZE: 2 2 2\nCENTERING: nodal\n",    // unsupported centering
		"DATA_FILE: u\nDATA_SIZE: 2 2 2\nTIME: soon\n",          // bad time
		"DATA_FILE: u\nDATA_SIZE: 2 2 2\nBRICK_ORIGIN: a b c\n", // bad origin
	}
	for i, in := range cases {
		if _, err := ParseHeader(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail:\n%s", i, in)
		}
	}
}

func TestParseHeaderIgnoresUnknownKeys(t *testing.T) {
	in := "# comment\nTIME: 1\nDATA_FILE: u.values\nDATA_SIZE: 2 2 2\nBYTE_OFFSET: 0\n\n"
	h, err := ParseHeader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.Size.Cells() != 8 {
		t.Fatalf("header: %+v", h)
	}
}

func TestReadValidation(t *testing.T) {
	dir := t.TempDir()
	// Header pointing at a short brick.
	hp := filepath.Join(dir, "u.bov")
	os.WriteFile(hp, []byte("DATA_FILE: u.values\nDATA_SIZE: 2 2 2\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "u.values"), make([]byte, 12), 0o644)
	if _, _, err := Read(hp); err == nil {
		t.Fatal("short brick must fail")
	}
	// Missing brick file.
	os.Remove(filepath.Join(dir, "u.values"))
	if _, _, err := Read(hp); err == nil {
		t.Fatal("missing brick must fail")
	}
	// Missing header.
	if _, _, err := Read(filepath.Join(dir, "nope.bov")); err == nil {
		t.Fatal("missing header must fail")
	}
}

func TestWriteValidation(t *testing.T) {
	dir := t.TempDir()
	h := Header{Size: mesh.Dims{NX: 2, NY: 2, NZ: 2}}
	if err := Write(filepath.Join(dir, "x.bov"), h, make([]float32, 3)); err == nil {
		t.Fatal("wrong data length must fail")
	}
}

func TestSpecialValuesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h := Header{Size: mesh.Dims{NX: 4, NY: 1, NZ: 1}}
	data := []float32{float32(math.Inf(1)), -0, 1e-38, float32(math.NaN())}
	path := filepath.Join(dir, "s.bov")
	if err := Write(path, h, data); err != nil {
		t.Fatal(err)
	}
	_, got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(got[0]), 1) || !math.IsNaN(float64(got[3])) {
		t.Fatalf("special values lost: %v", got)
	}
	if math.Float32bits(got[1]) != math.Float32bits(data[1]) {
		t.Fatal("negative zero lost")
	}
}
