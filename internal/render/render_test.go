package render

import (
	"bytes"
	"strings"
	"testing"

	"dfg/internal/mesh"
)

func testField() ([]float32, mesh.Dims) {
	d := mesh.Dims{NX: 4, NY: 3, NZ: 2}
	f := make([]float32, d.Cells())
	for i := range f {
		f[i] = float32(i)
	}
	return f, d
}

func TestSliceAxes(t *testing.T) {
	f, d := testField()

	// Z slice at k=1: values f[d.Index(i,j,1)].
	p, w, h, err := Slice(f, d, Z, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w != 4 || h != 3 {
		t.Fatalf("z slice shape %dx%d", w, h)
	}
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			if p[j*w+i] != f[d.Index(i, j, 1)] {
				t.Fatalf("z slice wrong at (%d,%d)", i, j)
			}
		}
	}

	p, w, h, err = Slice(f, d, X, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w != 3 || h != 2 {
		t.Fatalf("x slice shape %dx%d", w, h)
	}
	if p[0] != f[d.Index(2, 0, 0)] || p[w*h-1] != f[d.Index(2, 2, 1)] {
		t.Fatal("x slice values wrong")
	}

	if _, _, _, err := Slice(f, d, Y, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSliceErrors(t *testing.T) {
	f, d := testField()
	if _, _, _, err := Slice(f[:3], d, Z, 0); err == nil {
		t.Error("short field must fail")
	}
	if _, _, _, err := Slice(f, d, Z, 5); err == nil {
		t.Error("out-of-range index must fail")
	}
	if _, _, _, err := Slice(f, d, Axis(9), 0); err == nil {
		t.Error("bad axis must fail")
	}
	if Axis(9).String() == "" || X.String() != "x" {
		t.Error("axis names wrong")
	}
}

func TestWritePGM(t *testing.T) {
	plane := []float32{0, 1, 2, 3, 4, 5}
	var buf bytes.Buffer
	if err := WritePGM(&buf, plane, 3, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !strings.HasPrefix(string(out), "P5\n3 2\n255\n") {
		t.Fatalf("PGM header wrong: %q", out[:12])
	}
	pix := out[len(out)-6:]
	// Monotone data must render monotone (within the robust range clamp).
	for i := 1; i < 6; i++ {
		if pix[i] < pix[i-1] {
			t.Fatalf("grayscale not monotone: %v", pix)
		}
	}
	if err := WritePGM(&buf, plane, 2, 2); err == nil {
		t.Error("shape mismatch must fail")
	}
}

func TestWritePPMDiverging(t *testing.T) {
	plane := []float32{-8, -4, 0, 4, 8, 0}
	var buf bytes.Buffer
	if err := WritePPM(&buf, plane, 3, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !strings.HasPrefix(string(out), "P6\n3 2\n255\n") {
		t.Fatalf("PPM header wrong")
	}
	pix := out[len(out)-18:]
	// Most negative pixel: blue dominated; most positive: red dominated;
	// zero: white.
	if !(pix[2] > pix[0]) {
		t.Fatalf("negative value should be blue: rgb %v", pix[0:3])
	}
	if !(pix[12] > pix[14]) {
		t.Fatalf("positive value should be red: rgb %v", pix[12:15])
	}
	if pix[6] < 250 || pix[7] < 250 || pix[8] < 250 {
		t.Fatalf("zero should be near white: rgb %v", pix[6:9])
	}
	if err := WritePPM(&buf, plane, 5, 5); err == nil {
		t.Error("shape mismatch must fail")
	}
}

func TestConstantFieldRenders(t *testing.T) {
	plane := make([]float32, 16)
	var buf bytes.Buffer
	if err := WritePPM(&buf, plane, 4, 4); err != nil {
		t.Fatalf("all-zero plane must render: %v", err)
	}
	if err := WritePGM(&buf, plane, 4, 4); err != nil {
		t.Fatalf("constant plane must render: %v", err)
	}
}
