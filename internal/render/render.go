// Package render produces simple image renderings of derived fields —
// the stand-in for the paper's Figure 7 pseudo-color visualization. It
// writes binary PPM (color, with a diverging blue-white-red colormap
// suited to signed fields like Q-criterion) and PGM (grayscale) images
// of axis-aligned slices through a cell-centered field. PPM/PGM are
// chosen because they need no image library and every viewer opens them.
package render

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"dfg/internal/mesh"
)

// Axis selects the slicing direction.
type Axis int

const (
	// X slices perpendicular to the x axis (a YZ plane), and so on.
	X Axis = iota
	Y
	Z
)

// String names the axis.
func (a Axis) String() string {
	switch a {
	case X:
		return "x"
	case Y:
		return "y"
	case Z:
		return "z"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// Slice extracts a 2-D plane of a cell-centered field at the given index
// along the axis, returning the plane's data row-major with its width
// and height.
func Slice(field []float32, d mesh.Dims, axis Axis, index int) ([]float32, int, int, error) {
	if len(field) != d.Cells() {
		return nil, 0, 0, fmt.Errorf("render: field has %d values for %d cells", len(field), d.Cells())
	}
	var w, h int
	var at func(i, j int) int
	switch axis {
	case X:
		if index < 0 || index >= d.NX {
			return nil, 0, 0, fmt.Errorf("render: x index %d out of range [0, %d)", index, d.NX)
		}
		w, h = d.NY, d.NZ
		at = func(i, j int) int { return d.Index(index, i, j) }
	case Y:
		if index < 0 || index >= d.NY {
			return nil, 0, 0, fmt.Errorf("render: y index %d out of range [0, %d)", index, d.NY)
		}
		w, h = d.NX, d.NZ
		at = func(i, j int) int { return d.Index(i, index, j) }
	case Z:
		if index < 0 || index >= d.NZ {
			return nil, 0, 0, fmt.Errorf("render: z index %d out of range [0, %d)", index, d.NZ)
		}
		w, h = d.NX, d.NY
		at = func(i, j int) int { return d.Index(i, j, index) }
	default:
		return nil, 0, 0, fmt.Errorf("render: bad axis %d", axis)
	}
	out := make([]float32, w*h)
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			out[j*w+i] = field[at(i, j)]
		}
	}
	return out, w, h, nil
}

// robustRange picks the color range from the 2nd and 98th percentiles,
// so a few extreme cells don't wash out the rendering.
func robustRange(vals []float32) (lo, hi float64) {
	sorted := append([]float32(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	lo = float64(sorted[len(sorted)*2/100])
	hi = float64(sorted[len(sorted)*98/100])
	if hi <= lo {
		hi = lo + 1
	}
	return
}

// WritePGM renders the plane as an 8-bit grayscale binary PGM.
func WritePGM(w io.Writer, plane []float32, width, height int) error {
	if len(plane) != width*height {
		return fmt.Errorf("render: plane %d != %dx%d", len(plane), width, height)
	}
	lo, hi := robustRange(plane)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", width, height)
	for _, v := range plane {
		t := (float64(v) - lo) / (hi - lo)
		bw.WriteByte(toByte(t))
	}
	return bw.Flush()
}

// WritePPM renders the plane as a binary PPM with a diverging
// blue-white-red colormap centred on zero — the natural palette for
// signed fields like Q-criterion (red = rotation, blue = strain).
func WritePPM(w io.Writer, plane []float32, width, height int) error {
	if len(plane) != width*height {
		return fmt.Errorf("render: plane %d != %dx%d", len(plane), width, height)
	}
	lo, hi := robustRange(plane)
	// Symmetric range around zero keeps white at Q = 0.
	m := math.Max(math.Abs(lo), math.Abs(hi))
	if m == 0 {
		m = 1
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P6\n%d %d\n255\n", width, height)
	for _, v := range plane {
		t := float64(v) / m // -1 .. 1
		r, g, bl := diverging(t)
		bw.WriteByte(r)
		bw.WriteByte(g)
		bw.WriteByte(bl)
	}
	return bw.Flush()
}

// diverging maps t in [-1, 1] to blue-white-red.
func diverging(t float64) (r, g, b byte) {
	switch {
	case t < -1:
		t = -1
	case t > 1:
		t = 1
	}
	if t < 0 {
		// blue (0,0,255) -> white
		return toByte(1 + t), toByte(1 + t), 255
	}
	// white -> red (255,0,0)
	return 255, toByte(1 - t), toByte(1 - t)
}

// toByte clamps t in [0, 1] to an 8-bit channel.
func toByte(t float64) byte {
	switch {
	case t <= 0:
		return 0
	case t >= 1:
		return 255
	default:
		return byte(t*255 + 0.5)
	}
}
