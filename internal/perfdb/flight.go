package perfdb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dfg/internal/obs"
)

// FlightSchema identifies the flight-recorder dump format.
const FlightSchema = "dfg.flight/v1"

// FlightEntry is one recently-completed request in the flight ring:
// enough identity to read a dump cold, plus the request's full span
// tree when tracing was on.
type FlightEntry struct {
	UnixNS  int64  `json:"t"`
	Worker  int    `json:"worker"`
	Expr    string `json:"expr,omitempty"`
	N       int    `json:"n,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	Err     string `json:"err,omitempty"`
	DurNS   int64  `json:"dur_ns"`

	// Span holds the request's root span. Finished roots are immutable,
	// so retaining the pointer is race-free; the dump serialises it as a
	// SpanDump tree.
	Span *obs.Span `json:"-"`
}

// SpanDump is the JSON form of a span tree in a flight dump.
type SpanDump struct {
	Name     string      `json:"name"`
	Track    string      `json:"track,omitempty"`
	StartNS  int64       `json:"start_ns"`
	DurNS    int64       `json:"dur_ns"`
	Attrs    [][2]string `json:"attrs,omitempty"`
	Children []SpanDump  `json:"children,omitempty"`
}

// DumpSpan converts a finished span tree to its serialisable form.
func DumpSpan(s *obs.Span) *SpanDump {
	if s == nil {
		return nil
	}
	d := &SpanDump{
		Name:    s.Name,
		Track:   s.Track,
		StartNS: s.Start.UnixNano(),
		DurNS:   s.End.Sub(s.Start).Nanoseconds(),
	}
	for _, a := range s.Attrs {
		d.Attrs = append(d.Attrs, [2]string{a.Key, a.Value})
	}
	for _, c := range s.Children {
		d.Children = append(d.Children, *DumpSpan(c))
	}
	return d
}

// Attr returns the named attribute from a dumped span ("" if absent).
func (d *SpanDump) Attr(key string) string {
	if d == nil {
		return ""
	}
	for _, a := range d.Attrs {
		if a[0] == key {
			return a[1]
		}
	}
	return ""
}

// Find returns the first dumped span with the given name, depth-first.
func (d *SpanDump) Find(name string) *SpanDump {
	if d == nil {
		return nil
	}
	if d.Name == name {
		return d
	}
	for i := range d.Children {
		if m := d.Children[i].Find(name); m != nil {
			return m
		}
	}
	return nil
}

// FlightEntryDump is FlightEntry with the span tree inlined.
type FlightEntryDump struct {
	FlightEntry
	Span *SpanDump `json:"span,omitempty"`
}

// FlightDump is the on-disk postmortem artifact: the trigger, the
// build/host identity, the recent request ring with span trees, and
// (when a Recorder is attached) the most recent EvalRecords.
type FlightDump struct {
	Schema   string            `json:"schema"`
	Reason   string            `json:"reason"`
	DumpedNS int64             `json:"dumped_ns"`
	Meta     Meta              `json:"meta"`
	Entries  []FlightEntryDump `json:"entries"`
	Recent   []EvalRecord      `json:"recent,omitempty"`
}

// FlightRecorder keeps a bounded ring of recent requests and writes a
// FlightDump to disk when something trips — a circuit breaker opening,
// a worker panic, a failed chaos soak. It exists so postmortems never
// depend on tracing verbosity having been turned up before the crash.
//
// Note is cheap (mutex + ring slot); Dump is the expensive path and
// only runs on failure. The nil *FlightRecorder is a valid no-op.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []FlightEntry
	next    int
	full    bool
	dir     string
	meta    Meta
	rec     *Recorder // optional: recent EvalRecords ride along in dumps
	seq     atomic.Int64
	dumped  atomic.Int64
	lastErr atomic.Value // string
}

// DefaultFlightKeep is the ring capacity NewFlightRecorder(0) uses.
const DefaultFlightKeep = 64

// NewFlightRecorder builds a flight recorder dumping into dir. keep
// bounds the request ring (DefaultFlightKeep if <= 0); rec optionally
// attaches a perf recorder whose recent records are included in dumps.
func NewFlightRecorder(dir string, keep int, meta Meta, rec *Recorder) *FlightRecorder {
	if keep <= 0 {
		keep = DefaultFlightKeep
	}
	return &FlightRecorder{buf: make([]FlightEntry, keep), dir: dir, meta: meta, rec: rec}
}

// Note files one completed request into the ring.
func (f *FlightRecorder) Note(e FlightEntry) {
	if f == nil {
		return
	}
	if e.UnixNS == 0 {
		e.UnixNS = time.Now().UnixNano()
	}
	f.mu.Lock()
	f.buf[f.next] = e
	f.next++
	if f.next == len(f.buf) {
		f.next, f.full = 0, true
	}
	f.mu.Unlock()
}

// Dumped returns how many dumps have been written.
func (f *FlightRecorder) Dumped() int64 {
	if f == nil {
		return 0
	}
	return f.dumped.Load()
}

// LastError returns the most recent dump-write failure ("" if none) —
// dumps run on failure paths, so they report rather than propagate.
func (f *FlightRecorder) LastError() string {
	if f == nil {
		return ""
	}
	if s, ok := f.lastErr.Load().(string); ok {
		return s
	}
	return ""
}

// Dump writes the current ring (and the attached recorder's recent
// records) to dir as flight-<seq>-<reason>.json, returning the path.
// Failures are recorded on the recorder, not fatal: Dump is called
// from failure paths that must keep going.
func (f *FlightRecorder) Dump(reason string) string {
	if f == nil || f.dir == "" {
		return ""
	}
	f.mu.Lock()
	size := f.next
	if f.full {
		size = len(f.buf)
	}
	entries := make([]FlightEntry, 0, size)
	for i := 0; i < size; i++ {
		idx := i
		if f.full {
			idx = (f.next + i) % len(f.buf)
		}
		entries = append(entries, f.buf[idx])
	}
	f.mu.Unlock()

	dump := FlightDump{
		Schema:   FlightSchema,
		Reason:   reason,
		DumpedNS: time.Now().UnixNano(),
		Meta:     f.meta,
		Entries:  make([]FlightEntryDump, len(entries)),
		Recent:   f.rec.Last(256),
	}
	for i, e := range entries {
		dump.Entries[i] = FlightEntryDump{FlightEntry: e, Span: DumpSpan(e.Span)}
	}
	name := fmt.Sprintf("flight-%d-%d-%s.json", time.Now().UnixMilli(), f.seq.Add(1), sanitize(reason))
	path := filepath.Join(f.dir, name)
	if err := f.write(path, dump); err != nil {
		f.lastErr.Store(err.Error())
		return ""
	}
	f.dumped.Add(1)
	return path
}

func (f *FlightRecorder) write(path string, dump FlightDump) error {
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// sanitize keeps dump reasons filename-safe.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "dump"
	}
	return string(out)
}

// LoadFlight reads a flight dump back. The inlined span trees come back
// as SpanDump values on LoadedFlightEntry.
func LoadFlight(path string) (FlightDump, error) {
	var dump FlightDump
	data, err := os.ReadFile(path)
	if err != nil {
		return dump, err
	}
	// Entries' Span field is json:"-" on the write side; re-declare the
	// shape for reading so the span trees land somewhere visible.
	var in struct {
		Schema   string `json:"schema"`
		Reason   string `json:"reason"`
		DumpedNS int64  `json:"dumped_ns"`
		Meta     Meta   `json:"meta"`
		Entries  []struct {
			UnixNS  int64     `json:"t"`
			Worker  int       `json:"worker"`
			Expr    string    `json:"expr"`
			N       int       `json:"n"`
			TraceID string    `json:"trace_id"`
			Err     string    `json:"err"`
			DurNS   int64     `json:"dur_ns"`
			Span    *SpanDump `json:"span"`
		} `json:"entries"`
		Recent []EvalRecord `json:"recent"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return dump, fmt.Errorf("%s: %w", path, err)
	}
	if in.Schema != FlightSchema {
		return dump, fmt.Errorf("%s: schema %q, want %q", path, in.Schema, FlightSchema)
	}
	dump = FlightDump{Schema: in.Schema, Reason: in.Reason, DumpedNS: in.DumpedNS, Meta: in.Meta, Recent: in.Recent}
	for _, e := range in.Entries {
		dump.Entries = append(dump.Entries, FlightEntryDump{
			FlightEntry: FlightEntry{UnixNS: e.UnixNS, Worker: e.Worker, Expr: e.Expr, N: e.N, TraceID: e.TraceID, Err: e.Err, DurNS: e.DurNS},
			Span:        e.Span,
		})
	}
	return dump, nil
}

// EntrySpans returns each loaded entry's span tree (nil where absent),
// index-aligned with Entries.
func (d FlightDump) EntrySpans() []*SpanDump {
	out := make([]*SpanDump, len(d.Entries))
	for i := range d.Entries {
		out[i] = d.Entries[i].Span
	}
	return out
}

// EntryErrs returns the entries whose requests failed.
func (d FlightDump) EntryErrs() []FlightEntryDump {
	var out []FlightEntryDump
	for _, e := range d.Entries {
		if e.Err != "" {
			out = append(out, e)
		}
	}
	return out
}
