package perfdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Sample is the format-neutral unit the regression gate works on: one
// measured evaluation (or aggregated case) identified by expression,
// strategy, opt level and size, carrying an optional wall time and a
// bag of count metrics (kernels, writes, allocs, ...). Samples come
// from perfdb JSONL snapshots, dfg-bench sweep JSON, or dfg-bench
// -repeat warm/cold JSON — LoadAny sniffs which.
type Sample struct {
	Name     string // expression text or fingerprint
	Strategy string
	Opt      string
	N        int
	TimeNS   int64
	Counts   map[string]int64
}

// Key groups samples for aggregation: identity plus a power-of-two
// size bucket so nearby grid sizes from different runs compare.
type Key struct {
	Name       string
	Strategy   string
	Opt        string
	SizeBucket int
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s/n≤%d", k.Name, k.Strategy, orDash(k.Opt), k.SizeBucket)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// SizeBucket returns the smallest power of two >= n (0 for n <= 0),
// collapsing jittery element counts into comparable buckets.
func SizeBucket(n int) int {
	if n <= 0 {
		return 0
	}
	b := 1
	for b < n {
		b <<= 1
	}
	return b
}

// Agg is the per-key aggregate: evaluation count, wall-time stats over
// the samples that carried one, and the mean of every count metric.
type Agg struct {
	Key       Key
	Samples   int
	TimeCount int   // samples with TimeNS > 0
	MinTimeNS int64 // fastest sample — the noise-robust comparison basis
	SumTimeNS int64
	Counts    map[string]float64 // mean per sample
}

// MeanTimeNS returns the mean wall time over timed samples (0 if none).
func (a Agg) MeanTimeNS() int64 {
	if a.TimeCount == 0 {
		return 0
	}
	return a.SumTimeNS / int64(a.TimeCount)
}

// Aggregate folds samples into per-key aggregates.
func Aggregate(samples []Sample) map[Key]*Agg {
	out := make(map[Key]*Agg)
	counts := make(map[Key]map[string]int64)
	for _, s := range samples {
		k := Key{Name: s.Name, Strategy: s.Strategy, Opt: s.Opt, SizeBucket: SizeBucket(s.N)}
		a := out[k]
		if a == nil {
			a = &Agg{Key: k}
			out[k] = a
			counts[k] = make(map[string]int64)
		}
		a.Samples++
		if s.TimeNS > 0 {
			a.TimeCount++
			a.SumTimeNS += s.TimeNS
			if a.MinTimeNS == 0 || s.TimeNS < a.MinTimeNS {
				a.MinTimeNS = s.TimeNS
			}
		}
		for name, v := range s.Counts {
			counts[k][name] += v
		}
	}
	for k, a := range out {
		a.Counts = make(map[string]float64, len(counts[k]))
		for name, sum := range counts[k] {
			a.Counts[name] = float64(sum) / float64(a.Samples)
		}
	}
	return out
}

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// TimeTol is the fractional wall-time tolerance (0 -> 0.25): new
	// min-time beyond base*(1+TimeTol) is a time regression.
	TimeTol float64
	// MinTimeNS ignores time regressions where both sides are faster
	// than this floor (0 -> 100µs) — sub-noise cases aren't actionable.
	MinTimeNS int64
	// CountTol is the absolute tolerance on count-metric means (default
	// 0, so a single extra warm-path allocation is flagged).
	CountTol float64
	// TimeWarnOnly downgrades time regressions to warnings — counts
	// still hard-fail. This is the cross-machine CI-baseline mode.
	TimeWarnOnly bool
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.TimeTol <= 0 {
		o.TimeTol = 0.25
	}
	if o.MinTimeNS <= 0 {
		o.MinTimeNS = 100_000
	}
	return o
}

// Delta is one per-key, per-metric comparison outcome.
type Delta struct {
	Key    Key
	Metric string
	Base   float64
	New    float64
	// Regression marks a hard failure; Warning a downgraded time
	// regression (TimeWarnOnly) or a suspicious-but-tolerated drift.
	Regression bool
	Warning    bool
}

func (d Delta) ratio() float64 {
	if d.Base == 0 {
		if d.New == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return d.New / d.Base
}

// Verdict is a full comparison of two aggregated snapshots.
type Verdict struct {
	Deltas []Delta
	// Missing keys exist only in base; Added only in new. Neither fails
	// the gate (sweeps legitimately change shape across PRs).
	Missing []Key
	Added   []Key
	// Compared counts (key, metric) pairs present on both sides.
	Compared int
}

// Regressions returns the hard failures.
func (v Verdict) Regressions() []Delta { return v.filter(func(d Delta) bool { return d.Regression }) }

// Warnings returns the soft failures.
func (v Verdict) Warnings() []Delta { return v.filter(func(d Delta) bool { return d.Warning }) }

func (v Verdict) filter(keep func(Delta) bool) []Delta {
	var out []Delta
	for _, d := range v.Deltas {
		if keep(d) {
			out = append(out, d)
		}
	}
	return out
}

// OK reports whether the gate passes (no hard regressions).
func (v Verdict) OK() bool { return len(v.Regressions()) == 0 }

// Compare judges new against base per key: wall time against the
// fractional tolerance (minimum-of-samples vs minimum-of-samples, the
// standard benchmark noise filter) and every shared count metric
// against the absolute tolerance. Count regressions always hard-fail;
// time regressions hard-fail unless TimeWarnOnly.
func Compare(base, new map[Key]*Agg, opts CompareOptions) Verdict {
	opts = opts.withDefaults()
	var v Verdict
	keys := make([]Key, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		b := base[k]
		n, ok := new[k]
		if !ok {
			v.Missing = append(v.Missing, k)
			continue
		}
		if b.TimeCount > 0 && n.TimeCount > 0 {
			v.Compared++
			d := Delta{Key: k, Metric: "time_ns", Base: float64(b.MinTimeNS), New: float64(n.MinTimeNS)}
			slow := float64(n.MinTimeNS) > float64(b.MinTimeNS)*(1+opts.TimeTol)
			aboveFloor := n.MinTimeNS > opts.MinTimeNS || b.MinTimeNS > opts.MinTimeNS
			if slow && aboveFloor {
				if opts.TimeWarnOnly {
					d.Warning = true
				} else {
					d.Regression = true
				}
			}
			v.Deltas = append(v.Deltas, d)
		}
		metrics := make([]string, 0, len(b.Counts))
		for name := range b.Counts {
			if _, ok := n.Counts[name]; ok {
				metrics = append(metrics, name)
			}
		}
		sort.Strings(metrics)
		for _, name := range metrics {
			v.Compared++
			d := Delta{Key: k, Metric: name, Base: b.Counts[name], New: n.Counts[name]}
			if d.New > d.Base+opts.CountTol {
				d.Regression = true
			}
			v.Deltas = append(v.Deltas, d)
		}
	}
	for k := range new {
		if _, ok := base[k]; !ok {
			v.Added = append(v.Added, k)
		}
	}
	sortKeys(v.Added)
	return v
}

func sortKeys(keys []Key) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Strategy != b.Strategy {
			return a.Strategy < b.Strategy
		}
		if a.Opt != b.Opt {
			return a.Opt < b.Opt
		}
		return a.SizeBucket < b.SizeBucket
	})
}

// Markdown renders the verdict as a summary plus a table of every
// regression and warning (and, verbose, every compared metric).
func (v Verdict) Markdown(verbose bool) string {
	var b strings.Builder
	regs, warns := v.Regressions(), v.Warnings()
	fmt.Fprintf(&b, "## Perf comparison\n\n")
	fmt.Fprintf(&b, "%d metrics compared · **%d regressions** · %d warnings · %d keys missing · %d keys added\n\n",
		v.Compared, len(regs), len(warns), len(v.Missing), len(v.Added))
	rows := v.Deltas
	if !verbose {
		rows = append(append([]Delta{}, regs...), warns...)
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "| case | metric | base | new | ratio | verdict |\n")
		fmt.Fprintf(&b, "|---|---|---:|---:|---:|---|\n")
		for _, d := range rows {
			verdict := "ok"
			if d.Regression {
				verdict = "**REGRESSION**"
			} else if d.Warning {
				verdict = "warn"
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %.2fx | %s |\n",
				d.Key, d.Metric, fmtMetric(d.Metric, d.Base), fmtMetric(d.Metric, d.New), d.ratio(), verdict)
		}
		b.WriteString("\n")
	}
	if len(v.Missing) > 0 {
		fmt.Fprintf(&b, "Missing from new run: ")
		for i, k := range v.Missing {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

func fmtMetric(name string, val float64) string {
	if name == "time_ns" {
		return fmt.Sprintf("%.3fms", val/1e6)
	}
	if val == math.Trunc(val) {
		return fmt.Sprintf("%.0f", val)
	}
	return fmt.Sprintf("%.2f", val)
}

// --- Format sniffing ---------------------------------------------------

// LoadAny loads samples from any of the three persisted formats:
//
//   - a perfdb JSONL snapshot (meta header with schema "dfg.perfdb/..."),
//   - dfg-bench sweep JSON ({"config": ..., "cases": [{"wall_ns": ...}]}),
//   - dfg-bench -repeat warm/cold JSON ({"warm_evals": ..., "cases":
//     [{"cold_allocs": ...}]}).
//
// The foreign formats are parsed through anonymous structs here rather
// than by importing dfg/internal/metrics — perfdb sits below dfg in the
// dependency order.
func LoadAny(path string) ([]Sample, Meta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Meta{}, err
	}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, Meta{}, fmt.Errorf("perfdb: %s is empty", path)
	}
	// JSONL snapshots start with the meta line; anything else here is a
	// single indented JSON document.
	if first := firstLine(trimmed); bytes.Contains(first, []byte(`"dfg.perfdb`)) {
		meta, recs, err := Parse(data)
		if err != nil {
			return nil, Meta{}, fmt.Errorf("%s: %w", path, err)
		}
		return recordSamples(recs), meta, nil
	}
	var doc struct {
		Meta      *Meta `json:"meta"`
		WarmEvals int   `json:"warm_evals"`
		Cases     []struct {
			// sweep fields
			Expr     string `json:"expr"`
			Opt      string `json:"opt"`
			Strategy string `json:"strategy"`
			Cells    int    `json:"cells"`
			Failed   bool   `json:"failed"`
			WallNS   int64  `json:"wall_ns"`
			Writes   int64  `json:"device_writes"`
			Reads    int64  `json:"device_reads"`
			Kernels  int64  `json:"kernel_launches"`
			// warm/cold fields
			ColdAllocs        *int64 `json:"cold_allocs"`
			WarmAllocs        int64  `json:"warm_allocs"`
			ColdWrites        int64  `json:"cold_device_writes"`
			WarmWrites        int64  `json:"warm_device_writes"`
			UploadsSkipped    int64  `json:"uploads_skipped"`
			ScratchWarmAllocs int64  `json:"scratch_warm_allocs"`
			// schedule-gate fields (the "sched" pseudo-strategy row):
			// modeled per-element global bytes, fractional, stored as
			// millibytes so the counter stays integral.
			SchedGlobalBytes float64 `json:"sched_global_bytes"`
			FlatGlobalBytes  float64 `json:"flat_global_bytes"`
			MatchesFlat      bool    `json:"matches_flat"`
		} `json:"cases"`
	}
	if err := json.Unmarshal(trimmed, &doc); err != nil {
		return nil, Meta{}, fmt.Errorf("%s: unrecognised perf format: %w", path, err)
	}
	var meta Meta
	if doc.Meta != nil {
		meta = *doc.Meta
	}
	var samples []Sample
	for _, c := range doc.Cases {
		if c.ColdAllocs != nil {
			// warm/cold repeat case: no wall time, counters only. The
			// warm counters are the gate — a single fresh warm-path
			// allocation is a regression.
			counts := map[string]int64{
				"cold_allocs":         *c.ColdAllocs,
				"warm_allocs":         c.WarmAllocs,
				"cold_writes":         c.ColdWrites,
				"warm_writes":         c.WarmWrites,
				"scratch_warm_allocs": c.ScratchWarmAllocs,
			}
			if c.SchedGlobalBytes > 0 && c.FlatGlobalBytes > 0 {
				// Counts gate lower-is-better, so pin the modeled traffic
				// directly and the bitwise check inverted (0 = identical).
				counts["sched_global_millibytes"] = int64(math.Round(c.SchedGlobalBytes * 1000))
				counts["flat_global_millibytes"] = int64(math.Round(c.FlatGlobalBytes * 1000))
				counts["sched_flat_mismatch"] = 0
				if !c.MatchesFlat {
					counts["sched_flat_mismatch"] = 1
				}
			}
			samples = append(samples, Sample{
				Name: c.Expr, Strategy: c.Strategy, N: c.Cells,
				Counts: counts,
			})
			continue
		}
		if c.Failed {
			continue
		}
		samples = append(samples, Sample{
			Name: c.Expr, Strategy: c.Strategy, Opt: c.Opt, N: c.Cells, TimeNS: c.WallNS,
			Counts: map[string]int64{
				"writes":  c.Writes,
				"reads":   c.Reads,
				"kernels": c.Kernels,
			},
		})
	}
	if len(samples) == 0 {
		return nil, meta, fmt.Errorf("%s: no usable cases found", path)
	}
	return samples, meta, nil
}

func firstLine(b []byte) []byte {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i]
	}
	return b
}

// recordSamples converts raw EvalRecords to comparison samples.
func recordSamples(recs []EvalRecord) []Sample {
	out := make([]Sample, 0, len(recs))
	for _, r := range recs {
		if r.Err != "" {
			continue
		}
		out = append(out, Sample{
			Name: r.Fingerprint, Strategy: r.Strategy, Opt: r.Opt, N: r.N, TimeNS: r.TotalNS,
			Counts: map[string]int64{
				"writes":  int64(r.Writes),
				"reads":   int64(r.Reads),
				"kernels": int64(r.Kernels),
				"allocs":  r.Allocs,
				"uploads": r.Uploads,
			},
		})
	}
	return out
}
