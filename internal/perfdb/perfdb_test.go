package perfdb

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"dfg/internal/obs"
)

// rec builds a minimal record with a controllable timestamp.
func rec(ts int64, fp, strat string, n int, total int64) EvalRecord {
	return EvalRecord{UnixNS: ts, Fingerprint: fp, Strategy: strat, N: n, TotalNS: total}
}

// TestRecorderConcurrent hammers one recorder from many goroutines and
// checks the accounting: everything accepted is counted, the rings
// retain exactly their capacity, and the overflow is counted as dropped.
func TestRecorderConcurrent(t *testing.T) {
	perShard := 16
	r := NewRecorder(perShard)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(rec(int64(g*per+i+1), "fp", "vm", 64, 100))
			}
		}()
	}
	wg.Wait()
	if got := r.Recorded(); got != goroutines*per {
		t.Fatalf("Recorded = %d, want %d", got, goroutines*per)
	}
	capacity := perShard * recorderShards
	if got := r.Len(); got != capacity {
		t.Fatalf("Len = %d, want full capacity %d", got, capacity)
	}
	if got := r.Dropped(); got != int64(goroutines*per-capacity) {
		t.Fatalf("Dropped = %d, want %d", got, goroutines*per-capacity)
	}
	snap := r.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("Snapshot len = %d, want %d", len(snap), capacity)
	}
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].UnixNS < snap[j].UnixNS }) {
		t.Fatal("Snapshot not ordered by timestamp")
	}
}

// TestNilRecorder proves the nil recorder is a full no-op (the
// uninstrumented engine path relies on it).
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Record(rec(1, "fp", "vm", 1, 1))
	if r.Recorded() != 0 || r.Dropped() != 0 || r.Len() != 0 || r.Snapshot() != nil {
		t.Fatal("nil recorder is not a no-op")
	}
}

// TestSnapshotRoundtrip writes a snapshot file and reads it back:
// schema stamped, meta preserved, records intact and ordered.
func TestSnapshotRoundtrip(t *testing.T) {
	dir := t.TempDir()
	meta := Meta{GitRev: "abc123", Device: "CPU", Host: "testhost"}
	recs := []EvalRecord{
		rec(1, "fp1", "fusion", 4096, 1000),
		rec(2, "fp2", "tiered@4096", 64, 500),
	}
	recs[1].Resolved = "vm"
	recs[1].TraceID = "0000abcd-1"
	path, err := WriteFile(dir, meta, recs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(path), "perfdb-") || !strings.HasSuffix(path, ".jsonl") {
		t.Fatalf("unexpected snapshot name %q", path)
	}
	gotMeta, gotRecs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Schema != Schema {
		t.Fatalf("schema = %q, want %q", gotMeta.Schema, Schema)
	}
	if gotMeta.GitRev != "abc123" || gotMeta.Device != "CPU" || gotMeta.Host != "testhost" {
		t.Fatalf("meta roundtrip lost fields: %+v", gotMeta)
	}
	if gotMeta.CreatedUnixNS == 0 {
		t.Fatal("CreatedUnixNS not stamped")
	}
	if len(gotRecs) != 2 {
		t.Fatalf("got %d records, want 2", len(gotRecs))
	}
	if gotRecs[1].Resolved != "vm" || gotRecs[1].TraceID != "0000abcd-1" {
		t.Fatalf("record roundtrip lost fields: %+v", gotRecs[1])
	}
}

// TestParseForwardCompat checks the reader's tolerance contract: unknown
// line kinds are skipped, a missing meta header is tolerated, the v1
// schema still loads, and an unknown schema version is rejected.
func TestParseForwardCompat(t *testing.T) {
	jsonl := `{"kind":"meta","schema":"dfg.perfdb/v1","git_rev":"x"}
{"kind":"future-kind","whatever":true}
{"kind":"eval","fp":"f","strategy":"vm","n":8,"total_ns":42}
`
	meta, recs, err := Parse([]byte(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if meta.GitRev != "x" || len(recs) != 1 || recs[0].TotalNS != 42 {
		t.Fatalf("parse: meta=%+v recs=%+v", meta, recs)
	}

	// Bare records, no meta: tolerated (hand-built fixtures).
	_, recs, err = Parse([]byte(`{"fp":"f","strategy":"vm","n":8,"total_ns":1}` + "\n"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("bare-record parse: %v, %d records", err, len(recs))
	}

	// Unknown version: rejected.
	if _, _, err := Parse([]byte(`{"kind":"meta","schema":"dfg.perfdb/v3"}` + "\n")); err == nil {
		t.Fatal("unknown schema version not rejected")
	}
}

// sampleSet builds one key's worth of samples with the given min time
// and alloc count.
func sampleSet(timeNS, allocs int64) []Sample {
	return []Sample{
		{Name: "q", Strategy: "fusion", Opt: "O2", N: 4096, TimeNS: timeNS + 50_000, Counts: map[string]int64{"allocs": allocs, "kernels": 3}},
		{Name: "q", Strategy: "fusion", Opt: "O2", N: 4096, TimeNS: timeNS, Counts: map[string]int64{"allocs": allocs, "kernels": 3}},
	}
}

// TestCompareGate covers the regression gate's acceptance criteria: two
// identical runs report zero regressions, a 2x slowdown fails, one extra
// warm-path allocation fails, and TimeWarnOnly downgrades only the time
// verdict.
func TestCompareGate(t *testing.T) {
	base := Aggregate(sampleSet(1_000_000, 3))

	// Same build, same numbers: clean verdict.
	v := Compare(base, Aggregate(sampleSet(1_000_000, 3)), CompareOptions{})
	if !v.OK() || len(v.Warnings()) != 0 {
		t.Fatalf("identical runs: %s", v.Markdown(true))
	}
	if v.Compared == 0 {
		t.Fatal("identical runs compared nothing")
	}

	// 2x slowdown: hard time regression.
	v = Compare(base, Aggregate(sampleSet(2_000_000, 3)), CompareOptions{})
	if v.OK() {
		t.Fatalf("2x slowdown passed the gate: %s", v.Markdown(true))
	}
	if regs := v.Regressions(); len(regs) != 1 || regs[0].Metric != "time_ns" {
		t.Fatalf("2x slowdown regressions = %+v, want one time_ns", regs)
	}

	// One extra allocation: hard count regression at default tolerance.
	v = Compare(base, Aggregate(sampleSet(1_000_000, 4)), CompareOptions{})
	if v.OK() {
		t.Fatalf("+1 alloc passed the gate: %s", v.Markdown(true))
	}
	if regs := v.Regressions(); len(regs) != 1 || regs[0].Metric != "allocs" {
		t.Fatalf("+1 alloc regressions = %+v, want one allocs", regs)
	}

	// TimeWarnOnly: the slowdown demotes to a warning, the alloc still fails.
	v = Compare(base, Aggregate(sampleSet(2_000_000, 4)), CompareOptions{TimeWarnOnly: true})
	if regs := v.Regressions(); len(regs) != 1 || regs[0].Metric != "allocs" {
		t.Fatalf("warn-only regressions = %+v, want only allocs", regs)
	}
	if warns := v.Warnings(); len(warns) != 1 || warns[0].Metric != "time_ns" {
		t.Fatalf("warn-only warnings = %+v, want only time_ns", warns)
	}
}

// TestCompareNoiseFloor: a big relative slowdown below the absolute
// floor is sub-noise and must not fail the gate.
func TestCompareNoiseFloor(t *testing.T) {
	base := Aggregate(sampleSet(10_000, 1))
	v := Compare(base, Aggregate(sampleSet(90_000, 1)), CompareOptions{})
	if !v.OK() {
		t.Fatalf("sub-floor slowdown failed the gate: %s", v.Markdown(true))
	}
}

func TestSizeBucket(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 4, 4096: 4096, 4097: 8192}
	for n, want := range cases {
		if got := SizeBucket(n); got != want {
			t.Fatalf("SizeBucket(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestLoadAnySniffing feeds LoadAny all three persisted formats.
func TestLoadAnySniffing(t *testing.T) {
	dir := t.TempDir()

	// perfdb JSONL.
	jsonl, err := WriteFile(dir, Meta{GitRev: "r1"}, []EvalRecord{rec(1, "fp", "vm", 64, 100)})
	if err != nil {
		t.Fatal(err)
	}
	samples, meta, err := LoadAny(jsonl)
	if err != nil || len(samples) != 1 || meta.GitRev != "r1" {
		t.Fatalf("JSONL: %v, %d samples, meta %+v", err, len(samples), meta)
	}
	if samples[0].Counts["kernels"] != 0 || samples[0].TimeNS != 100 {
		t.Fatalf("JSONL sample: %+v", samples[0])
	}

	// dfg-bench sweep JSON (failed cases skipped).
	sweep := filepath.Join(dir, "sweep.json")
	doc := map[string]any{
		"meta": map[string]any{"git_rev": "r2"},
		"cases": []map[string]any{
			{"expr": "q", "opt": "O2", "strategy": "fusion", "cells": 4096, "wall_ns": 123456, "device_writes": 4, "device_reads": 1, "kernel_launches": 2},
			{"expr": "q", "opt": "O2", "strategy": "roundtrip", "cells": 4096, "failed": true},
		},
	}
	data, _ := json.MarshalIndent(doc, "", " ")
	if err := os.WriteFile(sweep, data, 0o644); err != nil {
		t.Fatal(err)
	}
	samples, meta, err = LoadAny(sweep)
	if err != nil || len(samples) != 1 || meta.GitRev != "r2" {
		t.Fatalf("sweep: %v, %d samples, meta %+v", err, len(samples), meta)
	}
	if samples[0].TimeNS != 123456 || samples[0].Counts["kernels"] != 2 {
		t.Fatalf("sweep sample: %+v", samples[0])
	}

	// dfg-bench -repeat warm/cold JSON (cold_allocs discriminates).
	wc := filepath.Join(dir, "warmcold.json")
	doc = map[string]any{
		"warm_evals": 3,
		"cases": []map[string]any{
			{"expr": "q", "strategy": "vm", "cells": 13824, "cold_allocs": 7, "warm_allocs": 0, "cold_device_writes": 4, "warm_device_writes": 0},
		},
	}
	data, _ = json.MarshalIndent(doc, "", " ")
	if err := os.WriteFile(wc, data, 0o644); err != nil {
		t.Fatal(err)
	}
	samples, _, err = LoadAny(wc)
	if err != nil || len(samples) != 1 {
		t.Fatalf("warmcold: %v, %d samples", err, len(samples))
	}
	s := samples[0]
	if s.TimeNS != 0 || s.Counts["cold_allocs"] != 7 || s.Counts["warm_allocs"] != 0 {
		t.Fatalf("warmcold sample: %+v", s)
	}
}

// TestFlightRecorder walks the postmortem path end to end: ring
// wrap-around, dump on trigger, and a cold read of the dump including
// the failing request's span tree and the recent perf records.
func TestFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	perf := NewRecorder(8)
	perf.Record(rec(10, "fp", "fusion", 64, 900))
	tracer := obs.NewTracer(8)
	f := NewFlightRecorder(dir, 4, Meta{GitRev: "deadbeef"}, perf)

	for i := 0; i < 5; i++ {
		f.Note(FlightEntry{UnixNS: int64(i + 1), Worker: 0, Expr: "ok", N: 64, DurNS: 100})
	}
	root := tracer.Start("request")
	root.SetAttr("error", "kernel launch: injected fault")
	root.Child("execute").Finish()
	root.Finish()
	f.Note(FlightEntry{
		UnixNS: 100, Worker: 1, Expr: "bad", N: 64,
		TraceID: root.ID(), Err: "kernel launch: injected fault", DurNS: 500, Span: root,
	})

	path := f.Dump("breaker-trip")
	if path == "" {
		t.Fatalf("Dump returned no path (lastErr=%q)", f.LastError())
	}
	if f.Dumped() != 1 {
		t.Fatalf("Dumped = %d, want 1", f.Dumped())
	}

	d, err := LoadFlight(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "breaker-trip" || d.Meta.GitRev != "deadbeef" {
		t.Fatalf("dump header: %+v", d)
	}
	if len(d.Entries) != 4 {
		t.Fatalf("entries = %d, want ring capacity 4", len(d.Entries))
	}
	errs := d.EntryErrs()
	if len(errs) != 1 || errs[0].TraceID != root.ID() {
		t.Fatalf("EntryErrs = %+v", errs)
	}
	sp := errs[0].Span
	if sp == nil || sp.Name != "request" {
		t.Fatalf("failing entry's span tree missing: %+v", sp)
	}
	if sp.Attr("error") == "" || sp.Find("execute") == nil {
		t.Fatalf("span tree lost structure: %+v", sp)
	}
	if len(d.Recent) != 1 || d.Recent[0].TotalNS != 900 {
		t.Fatalf("recent records: %+v", d.Recent)
	}

	// A dir-less flight recorder notes but never dumps.
	quiet := NewFlightRecorder("", 2, Meta{}, nil)
	quiet.Note(FlightEntry{Worker: 9})
	if p := quiet.Dump("x"); p != "" {
		t.Fatalf("dir-less Dump wrote %q", p)
	}
	// The nil flight recorder is a no-op.
	var nilF *FlightRecorder
	nilF.Note(FlightEntry{})
	if nilF.Dump("x") != "" || nilF.Dumped() != 0 {
		t.Fatal("nil FlightRecorder is not a no-op")
	}
}

// TestCollectMeta sanity-checks the build/host stamp.
func TestCollectMeta(t *testing.T) {
	m := CollectMeta("GPU")
	if m.Schema != Schema || m.Device != "GPU" {
		t.Fatalf("meta: %+v", m)
	}
	if m.GoVersion == "" || m.NumCPU <= 0 {
		t.Fatalf("meta missing runtime identity: %+v", m)
	}
	if m.CreatedUnixNS <= 0 || time.Unix(0, m.CreatedUnixNS).Year() < 2024 {
		t.Fatalf("meta timestamp: %d", m.CreatedUnixNS)
	}
}
