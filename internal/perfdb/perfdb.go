// Package perfdb is the repository's continuous-profiling substrate: a
// durable, queryable record of its own performance. Every evaluation an
// instrumented engine runs deposits one compact EvalRecord — identity
// (fingerprint, strategy, the *resolved* execution tier, optimisation
// level, size, device class), the stage timings (queue wait, plan,
// upload, kernel, download, total), device-traffic counts, arena
// activity, and the fault-recovery flags — into a lock-cheap sharded
// ring buffer (Recorder). Snapshots flush as schema-versioned JSONL
// stamped with the build and host identity (Meta), so BENCH_*.json-style
// artifacts from different PRs, machines and revisions stay comparable.
//
// On top of the raw records sit three consumers:
//
//   - Aggregate/Compare: per (fingerprint, strategy, opt, size-bucket)
//     aggregation with tolerance-based regression verdicts — the engine
//     behind cmd/dfg-report's regression gate and the future auto-tuner's
//     offline input;
//   - FlightRecorder: a bounded ring of recent requests with their full
//     span trees, dumped to disk automatically on a circuit-breaker trip
//     or worker panic, so postmortems never depend on having had tracing
//     verbosity turned up in advance;
//   - the serve layer's HTTP surface, which links Prometheus histogram
//     exemplars to retained traces by trace id.
//
// The package deliberately depends only on internal/obs (for span
// dumps): dfg, serve and the benchmarks all import it, so it must sit at
// the bottom of the dependency order.
package perfdb

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Schema identifies the perf-database record format. Bump the version on
// any incompatible field change; readers reject schemas they don't know.
// v2 added the per-record batch size (EvalRecord.Batch); v1 snapshots
// remain readable (SchemaV1), their records decoding with Batch == 0.
const Schema = "dfg.perfdb/v2"

// SchemaV1 is the previous record format, which this reader still
// accepts: v2 is a strict superset (the batch field, absent = unbatched).
const SchemaV1 = "dfg.perfdb/v1"

// EvalRecord is one evaluation's compact performance record. Durations
// are nanoseconds; modeled device times come from the run's ocl.Profile.
type EvalRecord struct {
	// UnixNS timestamps the record (record time, not enqueue time).
	UnixNS int64 `json:"t"`
	// TraceID links the record to a retained span tree, when tracing was
	// on for the request ("" otherwise).
	TraceID string `json:"trace_id,omitempty"`
	// Fingerprint is the short compile-cache fingerprint of the
	// expression (with its definitions and opt level folded in).
	Fingerprint string `json:"fp"`
	// Strategy is the strategy the evaluation entered with (the plan
	// cache name, e.g. "tiered@4096"); Resolved is what actually ran —
	// the tiered strategy's chosen tier, or the degradation ladder's
	// landing rung.
	Strategy string `json:"strategy"`
	Resolved string `json:"resolved"`
	// Opt is the optimisation level ("paper" or "O2").
	Opt string `json:"opt"`
	// Device names the simulated device class.
	Device string `json:"device"`
	// N is the evaluation's element count (the kernel ND-range).
	N int `json:"n"`
	// Batch is the number of member expressions merged into the
	// super-network this evaluation executed (schema v2). 0 means an
	// unbatched solo evaluation — including batches of one, which take
	// the solo fast path.
	Batch int `json:"batch,omitempty"`

	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
	// PlanNS covers compile+plan for the call (0 on warm prepared evals,
	// where planning happened at Prepare time).
	PlanNS     int64 `json:"plan_ns,omitempty"`
	UploadNS   int64 `json:"upload_ns,omitempty"`
	KernelNS   int64 `json:"kernel_ns,omitempty"`
	DownloadNS int64 `json:"download_ns,omitempty"`
	TotalNS    int64 `json:"total_ns"`

	Writes     int   `json:"writes"`
	Reads      int   `json:"reads"`
	Kernels    int   `json:"kernels"`
	WriteBytes int64 `json:"write_bytes,omitempty"`
	ReadBytes  int64 `json:"read_bytes,omitempty"`
	PeakBytes  int64 `json:"peak_bytes,omitempty"`

	// Arena activity across the run (deltas of the engine's arena
	// counters): fresh device-buffer allocations, free-list reuses, and
	// resident-source uploads moved vs skipped.
	Allocs         int64 `json:"allocs"`
	Reused         int64 `json:"reused,omitempty"`
	Uploads        int64 `json:"uploads,omitempty"`
	UploadsSkipped int64 `json:"uploads_skipped,omitempty"`

	// Recovery flags: transient retries burned, the ladder rung a
	// degraded run landed on (""), whether the device was lost, and the
	// final error ("" on success).
	Retries    int    `json:"retries,omitempty"`
	Degraded   string `json:"degraded,omitempty"`
	DeviceLost bool   `json:"device_lost,omitempty"`
	Err        string `json:"err,omitempty"`
}

// Meta stamps a snapshot with the identity needed to compare it against
// snapshots from other machines, builds and revisions.
type Meta struct {
	Schema    string `json:"schema"`
	Kind      string `json:"kind"` // "meta" (the JSONL header line)
	GitRev    string `json:"git_rev"`
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"num_cpu"`
	Host      string `json:"host"`
	// Device names the simulated device class the snapshot's records ran
	// on, when a single class applies ("" for mixed snapshots).
	Device        string `json:"device,omitempty"`
	CreatedUnixNS int64  `json:"created_ns"`
}

// CollectMeta gathers the current build and host identity. device may be
// "" when the snapshot mixes device classes.
func CollectMeta(device string) Meta {
	host, _ := os.Hostname()
	return Meta{
		Schema:        Schema,
		Kind:          "meta",
		GitRev:        GitRev(),
		GoVersion:     runtime.Version(),
		OS:            runtime.GOOS,
		Arch:          runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Host:          host,
		Device:        device,
		CreatedUnixNS: time.Now().UnixNano(),
	}
}

// GitRev resolves the git revision the binary was built from: the VCS
// stamp Go embeds in module builds when available, else the checked-out
// HEAD read straight from the .git directory (go run and test binaries
// are not always stamped), else "unknown".
func GitRev() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			return rev + dirty
		}
	}
	if rev := gitRevFromDir(); rev != "" {
		return rev
	}
	return "unknown"
}

// gitRevFromDir reads HEAD from the enclosing .git directory, following
// one level of symbolic ref. Best effort: any failure returns "".
func gitRevFromDir() string {
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for {
		head, err := os.ReadFile(filepath.Join(dir, ".git", "HEAD"))
		if err == nil {
			s := strings.TrimSpace(string(head))
			if ref, ok := strings.CutPrefix(s, "ref: "); ok {
				if b, err := os.ReadFile(filepath.Join(dir, ".git", ref)); err == nil {
					return strings.TrimSpace(string(b))
				}
				return ""
			}
			return s
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}
