package perfdb

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// evalLine wraps an EvalRecord with the line discriminator so a JSONL
// stream is self-describing.
type evalLine struct {
	Kind string `json:"kind"`
	EvalRecord
}

// WriteSnapshot writes a perf-database snapshot as JSONL: one meta
// header line (schema-stamped) followed by one line per record.
func WriteSnapshot(w *bufio.Writer, meta Meta, recs []EvalRecord) error {
	meta.Schema = Schema
	meta.Kind = "meta"
	if meta.CreatedUnixNS == 0 {
		meta.CreatedUnixNS = time.Now().UnixNano()
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, rec := range recs {
		if err := enc.Encode(evalLine{Kind: "eval", EvalRecord: rec}); err != nil {
			return err
		}
	}
	return w.Flush()
}

// flushSeq disambiguates snapshot files created within one nanosecond
// tick (and by concurrent flushers in one process).
var flushSeq atomic.Int64

// WriteFile writes a snapshot into dir (created if needed) under a
// unique perfdb-*.jsonl name and returns the path.
func WriteFile(dir string, meta Meta, recs []EvalRecord) (string, error) {
	if dir == "" {
		return "", fmt.Errorf("perfdb: empty snapshot directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("perfdb-%d-%d.jsonl", time.Now().UnixMilli(), flushSeq.Add(1))
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	bw := bufio.NewWriter(f)
	if err := WriteSnapshot(bw, meta, recs); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads a JSONL snapshot back: the meta header (zero Meta if the
// first line is a bare record — tolerated for hand-built fixtures) and
// every eval record. Unknown line kinds are skipped, so minor-version
// additions stay readable.
func Load(path string) (Meta, []EvalRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, nil, err
	}
	return Parse(data)
}

// Parse decodes a JSONL snapshot from memory (see Load).
func Parse(data []byte) (Meta, []EvalRecord, error) {
	var meta Meta
	var recs []EvalRecord
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Kind   string `json:"kind"`
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return meta, nil, fmt.Errorf("perfdb: line %d: %w", lineNo, err)
		}
		switch probe.Kind {
		case "meta":
			if err := json.Unmarshal(line, &meta); err != nil {
				return meta, nil, fmt.Errorf("perfdb: line %d: %w", lineNo, err)
			}
			if !schemaCompatible(meta.Schema) {
				return meta, nil, fmt.Errorf("perfdb: schema %q incompatible with %q", meta.Schema, Schema)
			}
		case "eval", "":
			var el evalLine
			if err := json.Unmarshal(line, &el); err != nil {
				return meta, nil, fmt.Errorf("perfdb: line %d: %w", lineNo, err)
			}
			recs = append(recs, el.EvalRecord)
		default:
			// Forward compatibility: skip record kinds this reader predates.
		}
	}
	if err := sc.Err(); err != nil {
		return meta, nil, err
	}
	return meta, recs, nil
}

// schemaCompatible reports whether this reader decodes a snapshot's
// schema: the current version, plus v1, whose records are a strict
// subset of v2 (the batch field, absent = unbatched). Empty means a
// headerless hand-built fixture, tolerated like a missing meta line.
func schemaCompatible(schema string) bool {
	return schema == "" || schema == Schema || schema == SchemaV1
}
