package perfdb

import (
	"sort"
	"sync"
	"sync/atomic"
)

// recorderShards is the fixed shard count (a power of two so shard
// selection is a mask). Sixteen shards keep contention negligible for
// pools far larger than the default four workers.
const recorderShards = 16

// DefaultShardCapacity is the per-shard ring size NewRecorder(0) uses:
// 16 shards x 512 records = the last 8192 evaluations retained.
const DefaultShardCapacity = 512

// Recorder is the always-on continuous-profiling sink: a sharded ring
// buffer of EvalRecords. Record is a shard-local mutex acquire plus a
// struct copy — no allocation, no channel, no global lock — so it stays
// under the warm-path overhead budget even at pool concurrency. When a
// ring wraps, the oldest records are overwritten (and counted as
// dropped); Snapshot and Flush read a consistent copy.
//
// All methods are safe for concurrent use. The nil *Recorder is a valid
// no-op: Record does nothing, Snapshot returns nil.
type Recorder struct {
	shards  [recorderShards]recorderShard
	seq     atomic.Uint64
	total   atomic.Int64 // records ever accepted
	dropped atomic.Int64 // records overwritten before any snapshot
}

type recorderShard struct {
	mu   sync.Mutex
	buf  []EvalRecord
	next int
	full bool
}

// NewRecorder builds a recorder retaining perShard records per shard
// (DefaultShardCapacity if perShard <= 0).
func NewRecorder(perShard int) *Recorder {
	if perShard <= 0 {
		perShard = DefaultShardCapacity
	}
	r := &Recorder{}
	for i := range r.shards {
		r.shards[i].buf = make([]EvalRecord, perShard)
	}
	return r
}

// Record deposits one evaluation record. Shard selection round-robins on
// an atomic counter, so concurrent writers spread across shards no
// matter which goroutines they run on.
func (r *Recorder) Record(rec EvalRecord) {
	if r == nil {
		return
	}
	s := &r.shards[r.seq.Add(1)&(recorderShards-1)]
	s.mu.Lock()
	if s.full {
		r.dropped.Add(1)
	}
	s.buf[s.next] = rec
	s.next++
	if s.next == len(s.buf) {
		s.next, s.full = 0, true
	}
	s.mu.Unlock()
	r.total.Add(1)
}

// Recorded returns the number of records ever accepted; Dropped the
// number overwritten by ring wrap-around.
func (r *Recorder) Recorded() int64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// Dropped returns the number of records lost to ring wrap-around.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Len returns the number of records currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		if s.full {
			n += len(s.buf)
		} else {
			n += s.next
		}
		s.mu.Unlock()
	}
	return n
}

// Snapshot copies out every retained record, ordered by timestamp.
// Records written concurrently with the snapshot may or may not appear;
// each shard's copy is internally consistent.
func (r *Recorder) Snapshot() []EvalRecord {
	if r == nil {
		return nil
	}
	out := make([]EvalRecord, 0, r.Len())
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		if s.full {
			out = append(out, s.buf[s.next:]...)
			out = append(out, s.buf[:s.next]...)
		} else {
			out = append(out, s.buf[:s.next]...)
		}
		s.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].UnixNS < out[j].UnixNS })
	return out
}

// Last returns up to n of the most recent records (by timestamp),
// oldest first — the flight recorder's view of recent history.
func (r *Recorder) Last(n int) []EvalRecord {
	all := r.Snapshot()
	if n <= 0 || n >= len(all) {
		return all
	}
	return all[len(all)-n:]
}
