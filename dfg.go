// Package dfg is a dynamic derived field generation framework for
// many-core architectures — a Go reproduction of the system described in
// "Efficient Dynamic Derived Field Generation on Many-Core Architectures
// Using Python" (Harrison, Navrátil, Moussalem, Jiang, Childs — SC 2012).
//
// Derived field generation creates new fields from the fields already in
// simulation data ("v_mag = sqrt(u*u + v*v + w*w)"). The framework has
// three parts, mirroring the paper's architecture:
//
//   - an expression parser (LALR(1), like the original's PLY parser)
//     that turns user expression text into a dataflow network
//     specification, pooling constants and eliminating common
//     sub-expressions;
//   - a dataflow network executed on an OpenCL-style device by one of
//     three execution strategies — roundtrip, staged, or fusion (a
//     dynamic kernel generator that fuses the whole network into a
//     single generated kernel); and
//   - this host interface, through which a host application hands in
//     expression text plus named input arrays and receives the derived
//     field, with per-run device profiling (transfer/kernel counts and
//     times) and the device-memory high-water mark.
//
// The device substrate is a simulated OpenCL runtime (see internal/ocl):
// kernels really execute data-parallel on the host, while transfers,
// kernel launches and memory capacity follow a calibrated model of the
// paper's Intel Xeon X5660 CPU and NVIDIA Tesla M2050 GPU devices.
//
// Concurrency: an Engine is single-goroutine (like the paper's
// one-instance-per-MPI-task model), but expression compilation is
// factored into a concurrency-safe shared layer (internal/compile) —
// compiled networks are immutable and may be served from one cache by
// any number of engines. internal/serve builds a pool of engines behind
// one shared cache for concurrent workloads.
//
// Quick start:
//
//	eng, _ := dfg.New(dfg.Config{Device: dfg.GPU, Strategy: "fusion"})
//	res, err := eng.Eval("v_mag = sqrt(u*u + v*v + w*w)",
//	    len(u), map[string][]float32{"u": u, "v": v, "w": w})
//	// res.Data holds the derived field; res.Profile the device events.
package dfg

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"dfg/internal/compile"
	"dfg/internal/dataflow"
	"dfg/internal/expr"
	"dfg/internal/mesh"
	"dfg/internal/obs"
	"dfg/internal/ocl"
	"dfg/internal/passes"
	"dfg/internal/perfdb"
	"dfg/internal/strategy"
)

// Re-exported mesh types: the public API speaks the same rectilinear
// mesh language as the internals.
type (
	// Mesh is a 3-D rectilinear mesh with cell-centered fields.
	Mesh = mesh.Mesh
	// Dims is a mesh's cell extent.
	Dims = mesh.Dims
	// Profile aggregates a run's device events: transfer and kernel
	// counts (the paper's Table II), bytes, and modeled device times.
	Profile = ocl.Profile
	// Event is one profiled device operation.
	Event = ocl.Event
)

// NewUniformMesh builds a mesh with uniform spacing (see mesh.NewUniform).
func NewUniformMesh(d Dims, dx, dy, dz float32) (*Mesh, error) {
	return mesh.NewUniform(d, dx, dy, dz)
}

// NewRectilinearMesh builds a mesh from explicit, strictly increasing
// per-axis point coordinate arrays.
func NewRectilinearMesh(x, y, z []float32) (*Mesh, error) {
	return mesh.NewRectilinear(x, y, z)
}

// DeviceKind selects a target architecture on the simulated Edge node.
type DeviceKind int

const (
	// CPU targets the Intel Xeon X5660 OpenCL CPU device.
	CPU DeviceKind = iota
	// GPU targets an NVIDIA Tesla M2050 (3 GB global memory).
	GPU
)

// String names the device kind.
func (k DeviceKind) String() string {
	if k == GPU {
		return "GPU"
	}
	return "CPU"
}

// Config configures an Engine.
type Config struct {
	// Device picks the target architecture. Default CPU.
	Device DeviceKind
	// Strategy is one of "roundtrip", "staged", "fusion", "streaming",
	// "vm" or "tiered". Default "fusion" (the paper's fastest device
	// strategy). "vm" evaluates on the host bytecode VM with zero
	// device traffic; "tiered" routes each request by size — below
	// VMThreshold elements to the VM, at or above to the device.
	Strategy string
	// VMThreshold is the tier boundary for Strategy "tiered": requests
	// with fewer elements run on the host VM, larger ones on the
	// device. 0 means strategy.DefaultVMThreshold. Ignored for other
	// strategies.
	VMThreshold int
	// MemScale divides the simulated device's memory capacity, for
	// running the paper's memory-constraint experiments at laptop
	// scale (grids scaled by s in each dimension pair with MemScale =
	// s^3). Default 1: the real 96 GB / 3 GB capacities.
	MemScale int64
	// Opt selects the optimisation level the engine compiles at:
	// "paper" (or empty — the default) for the paper's exact two-pass
	// front end, or "O2" for the full optimising pipeline, which is
	// ulp-identical on finite data but launches fewer kernels. All
	// paper-reproduction harnesses leave this empty.
	Opt string
	// Schedule selects a schedule transformation for the fusion
	// strategy's generated kernels: a spec like "tile=16x16,reg=2,vec=4"
	// or "tile=16x16,reg=2,vec=4,temporal", or the shorthands "tiled"
	// (the default schedule) and "flat"/"" (no transformation — the
	// paper's flat kernel). Every scheduled kernel is bitwise identical
	// to the flat one; only the emitted source and the modeled memory
	// traffic change. Requires Strategy "" or "fusion".
	Schedule string
}

// Engine is the host interface: it owns one device environment and one
// execution strategy, and evaluates expression programs against host
// arrays.
//
// What is and isn't safe to share: an Engine itself is NOT safe for
// concurrent use — its device environment (command queue, profile, peak-
// memory accounting) is per-run mutable state, so create one engine per
// goroutine, as the paper runs one framework instance per MPI task. The
// compile layer, by contrast, IS safe to share: the engine's definition
// database and network cache live in an internal/compile.Compiler whose
// methods are concurrency-safe, and the compiled networks it hands out
// are sealed (immutable). NewWith builds engines that front one shared
// compiler, so a hot expression compiles once for a whole pool of
// engines; internal/serve packages that pattern as a service.
type Engine struct {
	cfg   Config
	env   *ocl.Env
	strat strategy.Strategy

	// comp owns the engine's named-expression database and its compiled-
	// network cache. Private by default (New); shared when the engine was
	// built with NewWith.
	comp *compile.Compiler

	// tracer and reg are the optional observability hooks (Instrument).
	// Both nil by default: the uninstrumented hot path takes no clock
	// readings and allocates nothing for observability.
	tracer *obs.Tracer
	reg    *obs.Registry
	// evalHist memoizes the per-fingerprint latency histogram series.
	// Engine methods are single-goroutine (see above), so a plain map
	// suffices; the histograms themselves are concurrency-safe and may
	// be shared across a pool through the shared registry.
	evalHist map[string]*obs.Histogram

	// prepCount tracks open Prepared handles; when the last one closes,
	// the engine drains its buffer arena (see Prepared.Close).
	prepCount int

	// rec, when non-nil, is the armed fault-recovery state
	// (SetRecovery): transient retries with backoff and the capacity
	// degradation ladder, wrapped around every plan execution.
	rec *recovery

	// perf, when non-nil, is the continuous-profiling sink
	// (SetPerfRecorder): every evaluation deposits one EvalRecord.
	// pendingWait and pendingPlan stage the queue-wait and compile+plan
	// durations the next record consumes (engine methods are
	// single-goroutine, so plain fields suffice).
	perf         *perfdb.Recorder
	pendingWait  time.Duration
	pendingPlan  time.Duration
	pendingBatch int

	// lvl is the optimisation level every compile goes through
	// (Config.Opt, parsed). The zero value is the Paper level.
	lvl passes.Level
}

// NewDeviceFor builds the simulated device a Config selects — the same
// construction New performs, exposed so pools can build one device per
// worker engine.
func NewDeviceFor(cfg Config) (*ocl.Device, error) {
	if cfg.MemScale < 1 {
		cfg.MemScale = 1
	}
	var spec ocl.DeviceSpec
	switch cfg.Device {
	case CPU:
		spec = ocl.XeonX5660Spec(cfg.MemScale)
	case GPU:
		spec = ocl.TeslaM2050Spec(cfg.MemScale)
	default:
		return nil, fmt.Errorf("dfg: unknown device kind %d", cfg.Device)
	}
	return ocl.NewDevice(spec), nil
}

// New builds an engine on a fresh simulated device with a private
// compile cache.
func New(cfg Config) (*Engine, error) {
	dev, err := NewDeviceFor(cfg)
	if err != nil {
		return nil, err
	}
	name := cfg.Strategy
	if name == "tiered" && cfg.VMThreshold > 0 {
		name = fmt.Sprintf("tiered@%d", cfg.VMThreshold)
	}
	name, err = scheduledStrategyName(name, cfg.Schedule)
	if err != nil {
		return nil, err
	}
	eng, err := NewWith(dev, name, compile.NewCompiler())
	if err != nil {
		return nil, err
	}
	lvl, err := passes.ParseLevel(cfg.Opt)
	if err != nil {
		return nil, fmt.Errorf("dfg: %w", err)
	}
	eng.cfg = cfg
	eng.lvl = lvl
	return eng, nil
}

// NewOn builds an engine on an existing device (used by the distributed
// runner, where two engines share a node but each owns one GPU).
func NewOn(dev *ocl.Device, strategyName string) (*Engine, error) {
	return NewWith(dev, strategyName, compile.NewCompiler())
}

// NewWith builds an engine on an existing device that fronts a shared
// compiler. All engines sharing the compiler see one definition database
// and one compiled-network cache; internal/serve uses this to give every
// pool worker its own device while compiling each hot expression exactly
// once.
func NewWith(dev *ocl.Device, strategyName string, comp *compile.Compiler) (*Engine, error) {
	if strategyName == "" {
		strategyName = "fusion"
	}
	strat, err := strategy.ForName(strategyName)
	if err != nil {
		return nil, err
	}
	if comp == nil {
		comp = compile.NewCompiler()
	}
	return &Engine{
		cfg:   Config{Strategy: strategyName},
		env:   ocl.NewEnv(dev),
		strat: strat,
		comp:  comp,
	}, nil
}

// Instrument attaches observability hooks to the engine: a tracer
// (each Eval records a span tree covering parse -> fingerprint -> cache
// lookup -> build -> bind -> execute, with the run's device events
// attached as child spans) and a metrics registry (per-eval latency
// histograms keyed by expression fingerprint and strategy). Either may
// be nil: a nil tracer records no spans, a nil registry no metrics, and
// with both nil the hot path is exactly the uninstrumented one.
// Instrument must be called before the engine is used; like all Engine
// methods it is not safe to call concurrently with Eval.
func (e *Engine) Instrument(t *obs.Tracer, r *obs.Registry) {
	e.tracer = t
	e.reg = r
	if r != nil && e.evalHist == nil {
		e.evalHist = make(map[string]*obs.Histogram)
	}
}

// Device describes the engine's target device, e.g. "NVIDIA Tesla M2050".
func (e *Engine) Device() string { return e.env.Device().Name() }

// Strategy returns the engine's execution strategy name.
func (e *Engine) Strategy() string { return e.strat.Name() }

// OptLevel returns the engine's optimisation level name ("paper" or
// "O2").
func (e *Engine) OptLevel() string { return e.lvl.String() }

// WithOptLevel returns a derived engine that compiles at the given
// optimisation level ("paper" or "O2") but shares everything else with
// the receiver: the same device environment, strategy, compiler (and
// therefore cache — the level is folded into cache keys, so the two
// levels' plans coexist), and observability hooks. Because the device
// environment is shared, the derived engine inherits the receiver's
// single-goroutine discipline: use either engine at a time, not both
// concurrently.
//
// The derived engine has its own Prepared-handle count, so closing the
// last Prepared on one view drains the shared buffer arena even if the
// other view still holds handles — a performance (re-allocation) effect
// only, never a correctness one.
func (e *Engine) WithOptLevel(level string) (*Engine, error) {
	lvl, err := passes.ParseLevel(level)
	if err != nil {
		return nil, fmt.Errorf("dfg: %w", err)
	}
	if lvl == e.lvl {
		return e, nil
	}
	d := *e
	d.cfg.Opt = lvl.String()
	d.lvl = lvl
	d.prepCount = 0
	return &d, nil
}

// WithStrategy returns a derived engine that executes under the named
// strategy (any name ForName accepts, including "vm" and "tiered@N")
// but shares everything else with the receiver — the same device
// environment, compiler (strategy variants occupy distinct plan-cache
// slots, so plans for both coexist), optimisation level and
// observability hooks. Like WithOptLevel, the derived engine inherits
// the receiver's single-goroutine discipline and owns its own
// Prepared-handle count. An empty name returns the receiver unchanged.
func (e *Engine) WithStrategy(name string) (*Engine, error) {
	if name == "" {
		return e, nil
	}
	strat, err := strategy.ForName(name)
	if err != nil {
		return nil, fmt.Errorf("dfg: %w", err)
	}
	if strategy.PlanCacheName(strat) == strategy.PlanCacheName(e.strat) {
		return e, nil
	}
	d := *e
	d.cfg.Strategy = name
	d.strat = strat
	d.prepCount = 0
	if d.reg != nil {
		// The latency series is labeled by strategy: start a fresh memo so
		// the derived view records under its own name.
		d.evalHist = make(map[string]*obs.Histogram)
	}
	return &d, nil
}

// scheduledStrategyName folds a Config.Schedule spec into the strategy
// name: the flat spec leaves the name alone; a non-flat spec requires
// the fusion strategy (the only one with a kernel generator to
// schedule) and appends the canonical tag, e.g. "fusion+tile=16x16,
// reg=2,vec=4,temporal".
func scheduledStrategyName(name, schedule string) (string, error) {
	spec, err := passes.ParseScheduleSpec(schedule)
	if err != nil {
		return "", fmt.Errorf("dfg: %w", err)
	}
	if spec.IsFlat() {
		return name, nil
	}
	if name != "" && name != "fusion" {
		return "", fmt.Errorf("dfg: schedule %q requires the fusion strategy, not %q", schedule, name)
	}
	return "fusion+" + spec.CacheTag(), nil
}

// WithSchedule returns a derived engine whose fusion kernels are
// generated under the given schedule spec ("tile=16x16,reg=2,vec=4",
// "tiled", "flat", ...), sharing everything else with the receiver.
// Schedule-tagged plans occupy distinct plan-cache slots, so scheduled
// and flat plans for the same expression coexist. The receiver must be
// a fusion engine (any schedule); like WithStrategy, the derived view
// inherits the single-goroutine discipline.
func (e *Engine) WithSchedule(schedule string) (*Engine, error) {
	name, err := scheduledStrategyName("fusion", schedule)
	if err != nil {
		return nil, err
	}
	if _, ok := e.strat.(strategy.Fusion); !ok {
		return nil, fmt.Errorf("dfg: WithSchedule requires a fusion engine, not %q", e.strat.Name())
	}
	return e.WithStrategy(name)
}

// Result is a derived field along with the run's device profile.
type Result struct {
	// Data is the derived field, Width float32 components per element.
	Data  []float32
	Width int
	// Profile aggregates the run's device events.
	Profile Profile
	// PeakDeviceBytes is the device global-memory high-water mark.
	PeakDeviceBytes int64
	// Events is the raw device event log in enqueue order.
	Events []Event
	// Roots holds every root's output when the evaluated network was a
	// merged multi-root super-network, in root order; nil for ordinary
	// single-root evaluations. Batch demultiplexing consumes it — most
	// callers want a BatchResult's per-member Results instead.
	Roots []RootField
}

// RootField is one root's output array of a multi-root (batched)
// evaluation. (Field already names a timestep of velocity data.)
type RootField = strategy.Field

// Define registers a named expression in the engine's expression
// database, like the expression lists visualization tools maintain.
// Subsequent Eval calls may reference the name; it expands inline with
// its own local namespace. Definitions may reference other definitions
// (cycles are rejected at Eval time). Redefinition replaces the previous
// text and invalidates exactly the cached networks that reference the
// name (cache keys fingerprint an expression together with the
// definitions it uses); unrelated cache entries survive. If the engine
// shares its compiler (NewWith), the definition is visible to every
// engine on that compiler.
func (e *Engine) Define(name, text string) error {
	if err := e.comp.Define(name, text); err != nil {
		return fmt.Errorf("dfg: %w", err)
	}
	return nil
}

// Definitions lists the names in the engine's expression database.
func (e *Engine) Definitions() []string { return e.comp.Definitions() }

// compile parses expression text to an optimized sealed network through
// the engine's (possibly shared) compile cache — pipelines re-execute
// the same expression every time step, so a hot expression compiles
// once.
func (e *Engine) compile(text string) (*dataflow.Network, error) {
	return e.comp.CompileAt(text, e.lvl)
}

// Eval evaluates an expression program over n elements with the given
// named input arrays. The last statement's value is returned. If the
// engine is instrumented (Instrument), each call records a pipeline
// trace and a latency-histogram observation.
func (e *Engine) Eval(text string, n int, inputs map[string][]float32) (*Result, error) {
	sp := e.tracer.Start("eval")
	res, err := e.EvalTraced(sp, text, n, inputs)
	sp.Finish()
	return res, err
}

// EvalCtx is Eval observing a context: the run is abandoned at the
// next kernel-launch boundary once ctx is done, and with recovery
// armed (SetRecovery) a done context also stops further retries and
// fallbacks.
func (e *Engine) EvalCtx(ctx context.Context, text string, n int, inputs map[string][]float32) (*Result, error) {
	sp := e.tracer.Start("eval")
	res, err := e.evalTraced(ctx, sp, text, n, inputs)
	sp.Finish()
	return res, err
}

// EvalTraced is Eval recording its pipeline spans — compile (parse,
// fingerprint, cache, build), bind, execute, plus the run's device
// events on their own tracks — as children of the caller-owned parent
// span. internal/serve uses it to root each worker evaluation under a
// per-request span that also covers queue wait. A nil parent disables
// tracing for the call (metrics still fire if a registry is attached).
func (e *Engine) EvalTraced(parent *obs.Span, text string, n int, inputs map[string][]float32) (*Result, error) {
	return e.evalTraced(nil, parent, text, n, inputs)
}

// evalTraced is the shared Eval core; ctx may be nil.
func (e *Engine) evalTraced(ctx context.Context, parent *obs.Span, text string, n int, inputs map[string][]float32) (*Result, error) {
	if parent != nil { // guard: strconv.Itoa must not run on the no-op path
		parent.SetAttr("strategy", e.strat.Name()).SetAttr("n", strconv.Itoa(n))
	}
	t0 := e.clock()
	plan, fp, err := e.comp.PlanTracedAt(text, e.lvl, e.strat, e.env.Device(), parent)
	if err != nil {
		return nil, err
	}
	if e.perf != nil {
		e.pendingPlan = time.Since(t0)
	}
	bs := parent.Child("bind")
	bind := strategy.Bindings{N: n, Sources: make(map[string]strategy.Source, len(inputs)), Ctx: ctx}
	for name, data := range inputs {
		bind.Sources[name] = strategy.Source{Data: data, Width: 1}
	}
	bs.Finish()
	return e.runPlan(text, nil, plan, strategy.PlanCacheName(e.strat), bind, nil, parent, fp, t0)
}

// EvalOnMesh evaluates an expression over cell-centered fields on a
// mesh, automatically binding the mesh-derived sources the gradient
// primitive needs: dims and the per-cell coordinate arrays x, y, z.
func (e *Engine) EvalOnMesh(text string, m *Mesh, fields map[string][]float32) (*Result, error) {
	sp := e.tracer.Start("eval")
	defer sp.Finish()
	if sp != nil {
		sp.SetAttr("strategy", e.strat.Name()).SetAttr("n", strconv.Itoa(m.Cells()))
	}
	t0 := e.clock()
	plan, fp, err := e.comp.PlanTracedAt(text, e.lvl, e.strat, e.env.Device(), sp)
	if err != nil {
		return nil, err
	}
	if e.perf != nil {
		e.pendingPlan = time.Since(t0)
	}
	bs := sp.Child("bind")
	bind, err := strategy.BindMesh(m, fields)
	bs.Finish()
	if err != nil {
		return nil, err
	}
	return e.runPlan(text, nil, plan, strategy.PlanCacheName(e.strat), bind, nil, sp, fp, t0)
}

// runPlan executes a plan, wrapped in the engine's recovery loop when
// one is armed (SetRecovery): transient faults retry the same plan
// with backoff, capacity faults re-plan text down the degradation
// ladder. pr, when non-nil, is the Prepared handle the execution runs
// under; a degraded run parks its landing rung there so warm
// evaluations start from it. label names plan's rung
// (strategy.PlanCacheName at entry).
func (e *Engine) runPlan(text string, pr *Prepared, plan strategy.Plan, label string,
	bind strategy.Bindings, pool *ocl.Arena, sp *obs.Span, fp string, t0 time.Time) (*Result, error) {
	var capt *evalCapture
	var arenaBefore ocl.ArenaStats
	if e.perf != nil {
		capt = &evalCapture{entry: label}
		arenaBefore = e.ArenaStats()
	}
	var res *Result
	var err error
	if e.rec == nil {
		res, err = e.runPlanOnce(plan, label, bind, pool, sp, fp, t0, capt)
	} else {
		res, err = e.rec.run(e, text, pr, plan, label, bind, pool, sp, fp, t0, capt)
	}
	if capt != nil {
		e.recordEval(capt, res, err, bind.N, fp, sp, t0, arenaBefore)
	}
	return res, err
}

// runPlanOnce executes a prepared plan once, recording the execute span
// (with the simulated device events attached as fixed-time children on
// per-category tracks) and the per-(fingerprint, strategy, resolved)
// latency observation. label names the rung being attempted (the plan
// cache name at entry, or the ladder rung on fallback attempts); the
// resolved execution path — the tiered plan's chosen tier, else the
// label itself — lands on the span, the histogram and the perf capture.
// pool, when non-nil, is attached to the environment for the duration
// of the execution (the Prepared warm path); one-shot Eval passes nil
// so per-run allocate/free — and with it the paper's Table II event
// counts and Figure 6 memory profile — stays exact.
func (e *Engine) runPlanOnce(plan strategy.Plan, label string, bind strategy.Bindings,
	pool *ocl.Arena, sp *obs.Span, fp string, t0 time.Time, capt *evalCapture) (*Result, error) {
	if pool != nil {
		e.env.SetPool(pool)
		defer e.env.SetPool(nil)
	}
	es := sp.Child("execute")
	res, err := plan.Execute(e.env, bind)
	es.Finish()
	if err != nil {
		if es != nil {
			es.SetAttr("error", err.Error())
		}
		return nil, err
	}
	resolved := res.Resolved
	if resolved == "" {
		resolved = label
	}
	capt.setResolved(resolved)
	if sp != nil {
		sp.SetAttr("resolved", resolved)
	}
	attachDeviceEvents(es, res.Events)
	if e.reg != nil {
		e.evalHistogram(fp, resolved).ObserveEx(time.Since(t0), sp.ID())
	}
	return &Result{
		Data:            res.Data,
		Width:           res.Width,
		Profile:         res.Profile,
		PeakDeviceBytes: res.PeakBytes,
		Events:          res.Events,
		Roots:           res.Roots,
	}, nil
}

// evalHistogram resolves (memoized per engine) the latency series for a
// fingerprint under the engine's strategy and the resolved execution
// path. The strategy label stays the engine's configured strategy (so
// dashboards keyed on it are stable); resolved carries the tier that
// actually ran, un-hiding the tiered strategy's routing.
func (e *Engine) evalHistogram(fp, resolved string) *obs.Histogram {
	short := compile.ShortKey(fp)
	key := short + "|" + resolved
	if h, ok := e.evalHist[key]; ok {
		return h
	}
	h := e.reg.Histogram("dfg_eval_seconds",
		"End-to-end evaluation latency by expression fingerprint, strategy and resolved execution path.",
		obs.Labels{"fingerprint": short, "strategy": e.strat.Name(), "resolved": resolved})
	e.evalHist[key] = h
	return h
}

// attachDeviceEvents adds the run's device events to the execute span as
// fixed-interval children. Device events live on the simulated device
// timeline, not host wall time, so each is offset from the execute
// span's start and placed on its category's track ("host-to-device",
// "kernel", "device-to-host") — the multi-track layout metrics.
// WriteSpanTraces renders.
func attachDeviceEvents(es *obs.Span, events []ocl.Event) {
	if es == nil {
		return
	}
	base := es.Start
	for _, ev := range events {
		attrs := make([]obs.Attr, 0, 2)
		if ev.Bytes > 0 {
			attrs = append(attrs, obs.Attr{Key: "bytes", Value: strconv.FormatInt(ev.Bytes, 10)})
		}
		if ev.GlobalSize > 0 {
			attrs = append(attrs, obs.Attr{Key: "global_size", Value: strconv.Itoa(ev.GlobalSize)})
		}
		es.Event(ev.Name, deviceTrack(ev.Kind), base.Add(ev.Start), base.Add(ev.End), attrs...)
	}
}

// deviceTrack names the export track for a device event category.
func deviceTrack(k ocl.EventKind) string {
	switch k {
	case ocl.WriteEvent:
		return "host-to-device"
	case ocl.ReadEvent:
		return "device-to-host"
	default:
		return "kernel"
	}
}

// FusedSource returns the OpenCL C source the fusion strategy's dynamic
// kernel generator emits for an expression — an inspection hook, also
// exposed by cmd/dfg-fuse.
// When the engine's strategy is a scheduled fusion variant, the emitted
// source is the scheduled (tiled / vectorized / temporally blocked)
// kernel.
func (e *Engine) FusedSource(text string) (string, error) {
	net, err := e.compile(text)
	if err != nil {
		return "", err
	}
	if f, ok := e.strat.(strategy.Fusion); ok && !f.Sched.IsFlat() {
		return strategy.GeneratedSourceScheduled(net, "expr", f.Sched)
	}
	return strategy.GeneratedSource(net, "expr")
}

// NetworkScript parses an expression and renders the dataflow
// network-definition API calls that realize it (the paper's optional
// user-inspectable script).
func NetworkScript(text string) (string, error) {
	net, err := expr.Compile(text)
	if err != nil {
		return "", err
	}
	return net.Script(), nil
}

// NetworkDot parses an expression and renders its dataflow network in
// Graphviz DOT form (the layout behind the paper's Figure 4).
func NetworkDot(text string) (string, error) {
	net, err := expr.Compile(text)
	if err != nil {
		return "", err
	}
	return net.Dot(), nil
}

// Strategies lists the built-in execution strategy names.
func Strategies() []string { return strategy.Names() }
