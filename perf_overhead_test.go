package dfg_test

import (
	"testing"
	"time"

	"dfg"
	"dfg/internal/perfdb"
)

// TestPerfRecorderOverheadWarmVM guards the continuous-profiling budget:
// attaching the recorder to a warm host-VM evaluation path — the
// fastest, most overhead-sensitive path the engine has — must cost less
// than 5% plus an absolute noise floor. The comparison interleaves
// recorded and unrecorded batches and takes the minimum of each, the
// standard benchmark noise filter, so scheduler hiccups don't fail CI.
func TestPerfRecorderOverheadWarmVM(t *testing.T) {
	eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "vm"})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := eng.Prepare("r = x*y + 2.0*x + y")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()

	const n = 4096
	xs := make([]float32, n)
	ys := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i%37) * 0.5
		ys[i] = float32(i%23) - 11
	}
	inputs := map[string][]float32{"x": xs, "y": ys}

	const evalsPerBatch = 400
	batch := func() time.Duration {
		start := time.Now()
		for i := 0; i < evalsPerBatch; i++ {
			if _, err := pr.Eval(n, inputs); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	// Warm the path (plan cached, arena populated, VM bytecode hot).
	batch()

	rec := perfdb.NewRecorder(0)
	min := func(a, b time.Duration) time.Duration {
		if b < a {
			return b
		}
		return a
	}
	base, with := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 5; round++ {
		eng.SetPerfRecorder(nil)
		base = min(base, batch())
		eng.SetPerfRecorder(rec)
		with = min(with, batch())
	}

	if rec.Recorded() != 5*evalsPerBatch {
		t.Fatalf("recorder saw %d evaluations, want %d", rec.Recorded(), 5*evalsPerBatch)
	}
	// 5% relative budget plus a 500µs-per-batch absolute floor (1.25µs
	// per evaluation) so sub-noise baselines can't produce false alarms.
	limit := base + base/20 + 500*time.Microsecond
	t.Logf("warm VM batch: base=%v recorded=%v limit=%v (%.1f%% overhead)",
		base, with, limit, 100*float64(with-base)/float64(base))
	if with > limit {
		t.Fatalf("recorder overhead too high: base=%v recorded=%v limit=%v", base, with, limit)
	}
}
