// Command dfg-fuse inspects what the framework's front end and fusion
// code generator produce for an expression:
//
//	dfg-fuse -preset qcrit            # generated fused OpenCL C source
//	dfg-fuse -preset vortmag -dot     # dataflow network in Graphviz DOT
//	dfg-fuse -expr 'a = u*u' -script  # network-definition API script
//	dfg-fuse -preset qcrit -dump-passes -opt O2   # per-pass network trace
//	dfg-fuse -preset qcrit -schedule tiled        # tiled/vectorized kernel source
//	dfg-fuse -preset gradmag -schedule tiled -dump-passes  # + schedule annotations
package main

import (
	"flag"
	"fmt"
	"os"

	"dfg"
	"dfg/internal/expr"
	"dfg/internal/passes"
)

func main() {
	var (
		exprText = flag.String("expr", "", "expression program text (overrides -preset)")
		preset   = flag.String("preset", "qcrit", "expression preset: velmag, vortmag or qcrit")
		dot      = flag.Bool("dot", false, "print the dataflow network as Graphviz DOT instead of source")
		script   = flag.Bool("script", false, "print the network-definition API script instead of source")
		grammar  = flag.Bool("grammar", false, "print the expression grammar's LALR(1) state report (PLY's parser.out)")
		dump     = flag.Bool("dump-passes", false, "trace the optimisation pipeline: node counts and eliminated IDs before/after each pass")
		opt      = flag.String("opt", "paper", "optimisation level for -dump-passes: paper or O2")
		schedule = flag.String("schedule", "", "schedule transformation for the generated kernel: a spec like tile=16x16,reg=2,vec=4[,temporal], or the shorthands tiled / flat")
	)
	flag.Parse()

	if *grammar {
		rep, err := expr.GrammarReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfg-fuse:", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		return
	}

	text := *exprText
	if text == "" {
		switch *preset {
		case "velmag":
			text = dfg.VelocityMagnitudeExpr
		case "vortmag":
			text = dfg.VorticityMagnitudeExpr
		case "qcrit":
			text = dfg.QCriterionExpr
		case "gradmag":
			text = dfg.GradientMagnitudeExpr
		default:
			fmt.Fprintf(os.Stderr, "dfg-fuse: unknown preset %q\n", *preset)
			os.Exit(1)
		}
	}

	spec, err := passes.ParseScheduleSpec(*schedule)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfg-fuse:", err)
		os.Exit(1)
	}

	if *dump {
		lvl, err := passes.ParseLevel(*opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfg-fuse:", err)
			os.Exit(1)
		}
		// Debug routes the per-pass trace to stdout; Verify checks the
		// network invariants after every pass, so the dump doubles as a
		// pipeline self-check.
		net, _, err := expr.CompileWithPipeline(text, nil, passes.ForLevel(lvl),
			passes.RunOptions{Debug: os.Stdout, Verify: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfg-fuse:", err)
			os.Exit(1)
		}
		if !spec.IsFlat() {
			// Append the schedule-lowering stage's annotations, so the
			// dump covers the whole lowering pipeline through codegen.
			sched, err := passes.ComputeSchedule(net, spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dfg-fuse:", err)
				os.Exit(1)
			}
			fmt.Print(sched.Describe())
		}
		return
	}

	var out string
	switch {
	case *dot:
		out, err = dfg.NetworkDot(text)
	case *script:
		out, err = dfg.NetworkScript(text)
	default:
		var eng *dfg.Engine
		eng, err = dfg.New(dfg.Config{Schedule: *schedule})
		if err == nil {
			out, err = eng.FusedSource(text)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfg-fuse:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
