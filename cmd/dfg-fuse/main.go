// Command dfg-fuse inspects what the framework's front end and fusion
// code generator produce for an expression:
//
//	dfg-fuse -preset qcrit            # generated fused OpenCL C source
//	dfg-fuse -preset vortmag -dot     # dataflow network in Graphviz DOT
//	dfg-fuse -expr 'a = u*u' -script  # network-definition API script
package main

import (
	"flag"
	"fmt"
	"os"

	"dfg"
	"dfg/internal/expr"
)

func main() {
	var (
		exprText = flag.String("expr", "", "expression program text (overrides -preset)")
		preset   = flag.String("preset", "qcrit", "expression preset: velmag, vortmag or qcrit")
		dot      = flag.Bool("dot", false, "print the dataflow network as Graphviz DOT instead of source")
		script   = flag.Bool("script", false, "print the network-definition API script instead of source")
		grammar  = flag.Bool("grammar", false, "print the expression grammar's LALR(1) state report (PLY's parser.out)")
	)
	flag.Parse()

	if *grammar {
		rep, err := expr.GrammarReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfg-fuse:", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		return
	}

	text := *exprText
	if text == "" {
		switch *preset {
		case "velmag":
			text = dfg.VelocityMagnitudeExpr
		case "vortmag":
			text = dfg.VorticityMagnitudeExpr
		case "qcrit":
			text = dfg.QCriterionExpr
		default:
			fmt.Fprintf(os.Stderr, "dfg-fuse: unknown preset %q\n", *preset)
			os.Exit(1)
		}
	}

	var (
		out string
		err error
	)
	switch {
	case *dot:
		out, err = dfg.NetworkDot(text)
	case *script:
		out, err = dfg.NetworkScript(text)
	default:
		var eng *dfg.Engine
		eng, err = dfg.New(dfg.Config{})
		if err == nil {
			out, err = eng.FusedSource(text)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfg-fuse:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
