// Command dfg-bench regenerates every table and figure of the paper's
// evaluation section and writes them as aligned text (and CSV for the
// sweep data) to stdout or a results directory.
//
//	dfg-bench -all                     # everything, default scale 1/4
//	dfg-bench -table2                  # just the device-event counts
//	dfg-bench -fig5 -fig6 -scale 8     # the sweep at 1/8 linear scale
//	dfg-bench -all -out results/       # also write results/*.txt|csv
//	dfg-bench -json                    # sweep as machine-readable JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dfg/internal/metrics"
	"dfg/internal/perfdb"
	"dfg/internal/strategy"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every table and figure")
		table1    = flag.Bool("table1", false, "Table I: evaluation sub-grids")
		table2    = flag.Bool("table2", false, "Table II: device events per expression and strategy")
		fig2      = flag.Bool("fig2", false, "Figure 2: per-strategy memory constraints on the example network")
		fig5      = flag.Bool("fig5", false, "Figure 5: single-device runtime sweep")
		fig6      = flag.Bool("fig6", false, "Figure 6: single-device memory sweep")
		scale     = flag.Int("scale", 4, "divide grid dimensions by this factor (device memory by its cube)")
		grids     = flag.Int("grids", 0, "limit the sweep to the first N sub-grids (0 = all 12)")
		repeats   = flag.Int("repeats", 3, "repetitions per case (paper used 7, trimmed mean)")
		seed      = flag.Int64("seed", 42, "synthetic data seed")
		streaming = flag.Bool("streaming", false, "include the future-work streaming strategy in the sweep")
		opt       = flag.String("opt", "paper", "optimisation level expressions compile at: paper (the reproduction) or O2")
		outDir    = flag.String("out", "", "also write each artifact into this directory")
		asJSON    = flag.Bool("json", false, "emit the sweep as machine-readable JSON on stdout (per-grid, per-strategy)")
		repeat    = flag.Int("repeat", 0, "warm-vs-cold prepared-eval smoke: prepare Q-criterion once, eval cold then N warm times per strategy; exits 1 if warm evals allocate device buffers")
		strat     = flag.String("strategy", "", "restrict -repeat to one strategy (e.g. vm, fusion, sched); empty runs all")
		schedule  = flag.String("schedule", "", "kernel schedule for the fusion executor in the sweep: a spec like tile=16x16,reg=2,vec=4 or the shorthand tiled; empty keeps the flat paper kernel")
	)
	flag.Parse()
	if *all {
		*table1, *table2, *fig2, *fig5, *fig6 = true, true, true, true, true
	}
	if *repeat > 0 {
		runRepeat(*repeat, *strat, *asJSON, *outDir)
		return
	}
	if !(*table1 || *table2 || *fig2 || *fig5 || *fig6 || *asJSON) {
		flag.Usage()
		os.Exit(2)
	}

	emit := func(name string, tbl *metrics.Table, withCSV bool) {
		fmt.Println(tbl.Text())
		if *outDir == "" {
			return
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*outDir, name+".txt"), []byte(tbl.Text()), 0o644); err != nil {
			fatal(err)
		}
		if withCSV {
			if err := os.WriteFile(filepath.Join(*outDir, name+".csv"), []byte(tbl.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	if *table1 {
		emit("table1", metrics.TableI(*scale), true)
	}
	if *table2 {
		tbl, err := metrics.TableIIAt(*opt)
		if err != nil {
			fatal(err)
		}
		emit("table2", tbl, true)
	}
	if *fig2 {
		tbl, err := metrics.Fig2()
		if err != nil {
			fatal(err)
		}
		emit("fig2", tbl, false)
	}
	if *fig5 || *fig6 || *asJSON {
		fmt.Fprintf(os.Stderr, "dfg-bench: running sweep (scale 1/%d, %d repeats)...\n", *scale, *repeats)
		cfg := metrics.Config{
			LinScale: *scale, MaxGrids: *grids, Repeats: *repeats, Seed: *seed,
			IncludeStreaming: *streaming, Opt: *opt, Schedule: *schedule,
		}
		results, err := metrics.RunCases(cfg)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			doc, err := jsonDoc(cfg, results)
			if err != nil {
				fatal(err)
			}
			os.Stdout.Write(doc)
			if *outDir != "" {
				if err := os.MkdirAll(*outDir, 0o755); err != nil {
					fatal(err)
				}
				if err := os.WriteFile(filepath.Join(*outDir, "results.json"), doc, 0o644); err != nil {
					fatal(err)
				}
			}
		}
		if *fig5 {
			emit("fig5", metrics.Fig5Table(results), true)
			emit("fig5_speedups", metrics.SpeedupTable(results), true)
		}
		if *fig6 {
			emit("fig6", metrics.Fig6Table(results), true)
		}
		// The human-readable summary would corrupt a pure-JSON stdout, so
		// it only prints alongside the figure tables.
		if *fig5 || *fig6 {
			summary := metrics.Summary(results)
			fmt.Println(summary)
			if *outDir != "" {
				if err := os.WriteFile(filepath.Join(*outDir, "summary.txt"), []byte(summary), 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}
}

// jsonCase is the machine-readable form of one sweep case: identity,
// outcome, and both modeled and measured costs, with durations in
// nanoseconds and a pre-formatted string for eyeballing.
type jsonCase struct {
	Expr       string `json:"expr"`
	Opt        string `json:"opt"`
	Strategy   string `json:"strategy"`
	Schedule   string `json:"schedule,omitempty"`
	Device     string `json:"device"`
	Dims       [3]int `json:"dims"`
	Cells      int    `json:"cells"`
	DataBytes  int64  `json:"data_bytes"`
	Failed     bool   `json:"failed"`
	Reason     string `json:"reason,omitempty"`
	DevTimeNS  int64  `json:"device_time_ns"`
	DevTime    string `json:"device_time"`
	WallNS     int64  `json:"wall_ns"`
	Wall       string `json:"wall"`
	PeakBytes  int64  `json:"peak_device_bytes"`
	LimitBytes int64  `json:"gpu_limit_bytes"`
	Writes     int    `json:"device_writes"`
	Reads      int    `json:"device_reads"`
	Kernels    int    `json:"kernel_launches"`
	WriteBytes int64  `json:"write_bytes"`
	ReadBytes  int64  `json:"read_bytes"`
}

// jsonDoc renders the sweep configuration and every case as an indented
// JSON document, one object per (grid, expression, strategy, device).
func jsonDoc(cfg metrics.Config, results []metrics.CaseResult) ([]byte, error) {
	cases := make([]jsonCase, len(results))
	for i, r := range results {
		cases[i] = jsonCase{
			Expr:       r.Expr,
			Opt:        r.Opt,
			Strategy:   r.Exec,
			Schedule:   r.Schedule,
			Device:     r.Device.String(),
			Dims:       [3]int{r.Grid.Dims.NX, r.Grid.Dims.NY, r.Grid.Dims.NZ},
			Cells:      r.Grid.Cells,
			DataBytes:  r.Grid.DataBytes,
			Failed:     r.Failed,
			Reason:     r.Reason,
			DevTimeNS:  r.DevTime.Nanoseconds(),
			DevTime:    r.DevTime.String(),
			WallNS:     r.Wall.Nanoseconds(),
			Wall:       r.Wall.String(),
			PeakBytes:  r.PeakMem,
			LimitBytes: r.GPULimit,
			Writes:     r.Profile.Writes,
			Reads:      r.Profile.Reads,
			Kernels:    r.Profile.Kernels,
			WriteBytes: r.Profile.WriteBytes,
			ReadBytes:  r.Profile.ReadBytes,
		}
	}
	doc := struct {
		// Meta stamps the run with schema, git revision and host/device
		// identity so two results.json files compared by dfg-report are
		// attributable to their builds.
		Meta   perfdb.Meta `json:"meta"`
		Config struct {
			LinScale  int    `json:"lin_scale"`
			MaxGrids  int    `json:"max_grids"`
			Repeats   int    `json:"repeats"`
			Seed      int64  `json:"seed"`
			Streaming bool   `json:"streaming"`
			Opt       string `json:"opt"`
			Schedule  string `json:"schedule,omitempty"`
		} `json:"config"`
		Cases []jsonCase `json:"cases"`
	}{Meta: perfdb.CollectMeta("CPU+GPU"), Cases: cases}
	doc.Config.LinScale = cfg.LinScale
	doc.Config.MaxGrids = cfg.MaxGrids
	doc.Config.Repeats = cfg.Repeats
	doc.Config.Seed = cfg.Seed
	doc.Config.Streaming = cfg.IncludeStreaming
	doc.Config.Opt = cfg.Opt
	doc.Config.Schedule = cfg.Schedule
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// runRepeat is the warm-vs-cold smoke mode: it prepares the Q-criterion
// expression once per strategy, evaluates it cold and then warm times
// warm, and fails (exit 1) if any strategy's warm evaluations allocated
// fresh device buffers or diverged from the cold output — the CI gate
// on the prepared-plan and buffer-arena machinery.
func runRepeat(warm int, strat string, asJSON bool, outDir string) {
	names := metrics.RepeatNames()
	if strat != "" {
		if strat != metrics.BatchOfOneName && strat != metrics.ScheduledName {
			if _, err := strategy.ForName(strat); err != nil {
				fatal(err)
			}
		}
		names = []string{strat}
	}
	cases, err := metrics.RunRepeatFor(warm, names)
	if err != nil {
		fatal(err)
	}
	if asJSON {
		doc, err := json.MarshalIndent(struct {
			Meta      perfdb.Meta          `json:"meta"`
			WarmEvals int                  `json:"warm_evals"`
			Cases     []metrics.RepeatCase `json:"cases"`
		}{perfdb.CollectMeta("CPU"), warm, cases}, "", "  ")
		if err != nil {
			fatal(err)
		}
		doc = append(doc, '\n')
		os.Stdout.Write(doc)
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(filepath.Join(outDir, "warmcold.json"), doc, 0o644); err != nil {
				fatal(err)
			}
		}
	} else {
		fmt.Println(metrics.RepeatTable(cases).Text())
	}
	ok := true
	for _, c := range cases {
		if !c.Reduced() {
			ok = false
			fmt.Fprintf(os.Stderr, "dfg-bench: %s warm path did not beat cold: allocs cold=%d warm=%d identical=%v\n",
				c.Strategy, c.ColdAllocs, c.WarmAllocs, c.Identical)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfg-bench:", err)
	os.Exit(1)
}
