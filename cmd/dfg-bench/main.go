// Command dfg-bench regenerates every table and figure of the paper's
// evaluation section and writes them as aligned text (and CSV for the
// sweep data) to stdout or a results directory.
//
//	dfg-bench -all                     # everything, default scale 1/4
//	dfg-bench -table2                  # just the device-event counts
//	dfg-bench -fig5 -fig6 -scale 8     # the sweep at 1/8 linear scale
//	dfg-bench -all -out results/       # also write results/*.txt|csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dfg/internal/metrics"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every table and figure")
		table1    = flag.Bool("table1", false, "Table I: evaluation sub-grids")
		table2    = flag.Bool("table2", false, "Table II: device events per expression and strategy")
		fig2      = flag.Bool("fig2", false, "Figure 2: per-strategy memory constraints on the example network")
		fig5      = flag.Bool("fig5", false, "Figure 5: single-device runtime sweep")
		fig6      = flag.Bool("fig6", false, "Figure 6: single-device memory sweep")
		scale     = flag.Int("scale", 4, "divide grid dimensions by this factor (device memory by its cube)")
		grids     = flag.Int("grids", 0, "limit the sweep to the first N sub-grids (0 = all 12)")
		repeats   = flag.Int("repeats", 3, "repetitions per case (paper used 7, trimmed mean)")
		seed      = flag.Int64("seed", 42, "synthetic data seed")
		streaming = flag.Bool("streaming", false, "include the future-work streaming strategy in the sweep")
		outDir    = flag.String("out", "", "also write each artifact into this directory")
	)
	flag.Parse()
	if *all {
		*table1, *table2, *fig2, *fig5, *fig6 = true, true, true, true, true
	}
	if !(*table1 || *table2 || *fig2 || *fig5 || *fig6) {
		flag.Usage()
		os.Exit(2)
	}

	emit := func(name string, tbl *metrics.Table, withCSV bool) {
		fmt.Println(tbl.Text())
		if *outDir == "" {
			return
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*outDir, name+".txt"), []byte(tbl.Text()), 0o644); err != nil {
			fatal(err)
		}
		if withCSV {
			if err := os.WriteFile(filepath.Join(*outDir, name+".csv"), []byte(tbl.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	if *table1 {
		emit("table1", metrics.TableI(*scale), true)
	}
	if *table2 {
		tbl, err := metrics.TableII()
		if err != nil {
			fatal(err)
		}
		emit("table2", tbl, true)
	}
	if *fig2 {
		tbl, err := metrics.Fig2()
		if err != nil {
			fatal(err)
		}
		emit("fig2", tbl, false)
	}
	if *fig5 || *fig6 {
		fmt.Fprintf(os.Stderr, "dfg-bench: running sweep (scale 1/%d, %d repeats)...\n", *scale, *repeats)
		results, err := metrics.RunCases(metrics.Config{
			LinScale: *scale, MaxGrids: *grids, Repeats: *repeats, Seed: *seed,
			IncludeStreaming: *streaming,
		})
		if err != nil {
			fatal(err)
		}
		if *fig5 {
			emit("fig5", metrics.Fig5Table(results), true)
			emit("fig5_speedups", metrics.SpeedupTable(results), true)
		}
		if *fig6 {
			emit("fig6", metrics.Fig6Table(results), true)
		}
		summary := metrics.Summary(results)
		fmt.Println(summary)
		if *outDir != "" {
			if err := os.WriteFile(filepath.Join(*outDir, "summary.txt"), []byte(summary), 0o644); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfg-bench:", err)
	os.Exit(1)
}
