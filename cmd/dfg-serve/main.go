// Command dfg-serve drives the concurrent evaluation service
// (internal/serve) at configurable concurrency and reports throughput
// plus the pool's aggregated device profile — a load generator for the
// engine-pool + shared-compile-cache architecture.
//
//	dfg-serve                                  # 8 workers, 16 clients, 2000 requests
//	dfg-serve -workers 4 -clients 32 -n 65536  # smaller pool, bigger fields
//	dfg-serve -distinct 8 -device gpu          # 8 distinct expressions on the GPU model
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dfg"
	"dfg/internal/serve"
)

func main() {
	var (
		workers  = flag.Int("workers", 8, "pool size: engines / worker goroutines")
		queue    = flag.Int("queue", 0, "queue depth (0 = 2x workers)")
		clients  = flag.Int("clients", 16, "concurrent client goroutines")
		requests = flag.Int("requests", 2000, "total requests to issue")
		n        = flag.Int("n", 16384, "elements per field")
		distinct = flag.Int("distinct", 4, "number of distinct expressions in the mix")
		device   = flag.String("device", "cpu", "cpu or gpu")
		strat    = flag.String("strategy", "fusion", "roundtrip, staged or fusion")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
	)
	flag.Parse()

	kind := dfg.CPU
	if *device == "gpu" {
		kind = dfg.GPU
	} else if *device != "cpu" {
		fmt.Fprintf(os.Stderr, "dfg-serve: unknown device %q\n", *device)
		os.Exit(2)
	}

	pool, err := serve.NewPool(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Device:         kind,
		Strategy:       *strat,
		DefaultTimeout: *timeout,
	})
	if err != nil {
		fatal(err)
	}
	defer pool.Close()

	// A definition in the mix shows the shared database: every worker
	// sees it, and the cache fingerprints it into the keys.
	if err := pool.Define("vmag2", "u*u + v*v + w*w"); err != nil {
		fatal(err)
	}
	exprs := make([]string, *distinct)
	for i := range exprs {
		// Distinct programs (different constants) so the cache holds
		// `distinct` entries; each is hot across all clients.
		exprs[i] = fmt.Sprintf("r = sqrt(vmag2) + %d.0 * w", i)
	}

	inputs := syntheticInputs(*n)
	fmt.Printf("dfg-serve: %d workers (%s, %s), %d clients, %d requests, %d distinct expressions, n=%d\n",
		*workers, *device, *strat, *clients, *requests, *distinct, *n)

	var issued atomic.Int64
	var failures atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := issued.Add(1)
				if i > int64(*requests) {
					return
				}
				req := serve.Request{
					Expr:   exprs[(int(i)+c)%len(exprs)],
					N:      *n,
					Inputs: inputs,
				}
				if _, err := pool.Submit(context.Background(), req); err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "dfg-serve: request %d: %v\n", i, err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := pool.Stats()
	fmt.Printf("\n%-28s %v\n", "wall time:", elapsed.Round(time.Millisecond))
	fmt.Printf("%-28s %.0f req/s\n", "throughput:", float64(st.Served)/elapsed.Seconds())
	fmt.Printf("%-28s %d served, %d failed, %d expired, %d rejected\n",
		"requests:", st.Served, st.Failed, st.Expired, st.Rejected)
	fmt.Printf("%-28s %d compiles for %d requests (%d cache hits, %d entries)\n",
		"shared compile cache:", st.Compiles, *requests, st.CacheHits, st.CacheEntries)
	fmt.Printf("%-28s %s\n", "aggregate device profile:", st.Profile.String())
	fmt.Printf("%-28s %d bytes\n", "peak device memory (1 run):", st.PeakDeviceBytes)
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// syntheticInputs builds deterministic u/v/w fields.
func syntheticInputs(n int) map[string][]float32 {
	u := make([]float32, n)
	v := make([]float32, n)
	w := make([]float32, n)
	for i := 0; i < n; i++ {
		u[i] = float32(i%17) * 0.25
		v[i] = float32(i%13) - 6
		w[i] = float32(i%29) * 0.125
	}
	return map[string][]float32{"u": u, "v": v, "w": w}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfg-serve:", err)
	os.Exit(1)
}
