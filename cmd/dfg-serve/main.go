// Command dfg-serve drives the concurrent evaluation service
// (internal/serve) at configurable concurrency and reports throughput
// plus the pool's aggregated device profile — a load generator for the
// engine-pool + shared-compile-cache architecture, with a live
// introspection endpoint for the pool's metrics and request traces.
//
//	dfg-serve                                  # 8 workers, 16 clients, 2000 requests
//	dfg-serve -workers 4 -clients 32 -n 65536  # smaller pool, bigger fields
//	dfg-serve -distinct 8 -device gpu          # 8 distinct expressions on the GPU model
//	dfg-serve -listen :9090 -linger 1m         # keep /metrics, /healthz, /trace,
//	                                           # /slow up after the load finishes
//	dfg-serve -listen :9090 -requests 0        # no load: serve introspection until
//	                                           # interrupted (or -linger elapses)
//	dfg-serve -slow 5ms                        # log the span tree of any request
//	                                           # slower than 5ms end to end
//	dfg-serve -chaos 7                         # seeded fault injection on every
//	                                           # worker device: flaky transfers,
//	                                           # kernels, allocations, lost devices
//	dfg-serve -batch-window 200us              # batch-forming scheduler: requests
//	                                           # arriving within the window merge
//	                                           # into one super-network evaluation
//	dfg-serve -batch-window 200us -chaos 7     # soak the batch path: a faulting
//	                                           # member degrades its batch to solo
//	                                           # runs, and zero requests may drop
//	dfg-serve -perf-dir perf/                  # persist the per-evaluation perf
//	                                           # database on shutdown; flight dumps
//	                                           # land there on breaker trips/panics
//	dfg-serve -listen :9090 -pprof -tail 1     # pprof handlers + slowest-1% trace
//	                                           # retention on /trace/{id}
//
// Under -chaos each worker's device gets a deterministic (seeded) fault
// plan; the engines' retry/degradation recovery and the pool's circuit
// breakers absorb the faults, clients resubmit dropped requests a
// bounded number of times, and the run exits non-zero if any request is
// ultimately dropped or any device buffer leaks — the soak test the CI
// chaos-smoke job runs under the race detector.
//
// On SIGINT/SIGTERM the pool shuts down gracefully — queued requests
// drain, metrics freeze — and the final service report (request
// outcomes, latency quantiles, cache effectiveness, per-worker
// utilisation, aggregate device profile) is printed before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dfg"
	"dfg/internal/ocl"
	"dfg/internal/serve"
)

func main() {
	var (
		workers   = flag.Int("workers", 8, "pool size: engines / worker goroutines")
		queue     = flag.Int("queue", 0, "queue depth (0 = 2x workers)")
		clients   = flag.Int("clients", 16, "concurrent client goroutines")
		requests  = flag.Int("requests", 2000, "total requests to issue (0 = no load, serve introspection only)")
		n         = flag.Int("n", 16384, "elements per field")
		distinct  = flag.Int("distinct", 4, "number of distinct expressions in the mix")
		device    = flag.String("device", "cpu", "cpu or gpu")
		strat     = flag.String("strategy", "fusion", "roundtrip, staged or fusion")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		listen    = flag.String("listen", "", "serve /metrics, /healthz, /trace and /slow on this address (empty = off)")
		linger    = flag.Duration("linger", 0, "keep the introspection endpoint up this long after the load completes")
		slow      = flag.Duration("slow", 0, "slow-request threshold: log the full span tree of slower requests (0 = off)")
		traceKeep = flag.Int("trace-keep", 64, "recent request traces retained for /trace (negative disables tracing)")
		perfDir   = flag.String("perf-dir", "", "perf-database directory: write the per-evaluation record snapshot on shutdown and flight-recorder dumps on failures (empty = off)")
		tailPct   = flag.Float64("tail", 0, "retain the slowest P% of request traces for /trace/{id} (0 = default 5; negative keeps only errored/degraded traces)")
		pprofOn   = flag.Bool("pprof", false, "mount /debug/pprof/ on the introspection endpoint")

		batchWindow = flag.Duration("batch-window", 0, "batch-forming window: requests arriving within it merge into one super-network evaluation (0 = batching off)")
		batchMax    = flag.Int("batch-max", 16, "members per batch before an early flush (with -batch-window)")

		chaosSeed    = flag.Int64("chaos", 0, "seed per-worker fault injection (0 = off): probabilistic transfer/kernel/allocation faults and occasional device loss")
		chaosProb    = flag.Float64("chaos-prob", 0.02, "per-operation fault probability under -chaos")
		chaosLost    = flag.Float64("chaos-lost", 0.002, "per-operation device-loss probability under -chaos")
		chaosRetries = flag.Int("chaos-retries", 10, "client resubmits before a request counts as dropped under -chaos")
	)
	flag.Parse()

	kind := dfg.CPU
	if *device == "gpu" {
		kind = dfg.GPU
	} else if *device != "cpu" {
		fmt.Fprintf(os.Stderr, "dfg-serve: unknown device %q\n", *device)
		os.Exit(2)
	}

	cfg := serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Device:         kind,
		Strategy:       *strat,
		DefaultTimeout: *timeout,
		TraceKeep:      *traceKeep,
		SlowThreshold:  *slow,
		PerfDir:        *perfDir,
		TailPercent:    *tailPct,
		EnablePprof:    *pprofOn,
		BatchWindow:    *batchWindow,
		BatchMax:       *batchMax,
	}
	if *chaosSeed != 0 {
		seed, prob, lost := *chaosSeed, *chaosProb, *chaosLost
		cfg.FaultPlanFor = func(worker int) *ocl.FaultPlan {
			// Deterministic per worker for a given seed: a failing soak is
			// reproducible by rerunning with the same -chaos value.
			return ocl.NewFaultPlan(seed+int64(worker)).
				FailEvery(ocl.FaultAlloc, prob).
				FailEvery(ocl.FaultWrite, prob).
				FailEvery(ocl.FaultRead, prob).
				FailEvery(ocl.FaultKernel, prob).
				LoseDeviceEvery(lost)
		}
		// Short cooldown so tripped devices probe (and heal) within the
		// soak's lifetime.
		cfg.BreakerCooldown = 10 * time.Millisecond
	}
	pool, err := serve.NewPool(cfg)
	if err != nil {
		fatal(err)
	}

	// Graceful shutdown: the first signal stops issuing load and begins
	// the drain; the pool still answers every accepted request.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *listen != "" {
		addr, shutdown, err := pool.ListenAndServe(*listen)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		fmt.Printf("dfg-serve: introspection endpoint on http://%s (/metrics /healthz /trace /slow)\n", addr)
	}

	// A definition in the mix shows the shared database: every worker
	// sees it, and the cache fingerprints it into the keys.
	if err := pool.Define("vmag2", "u*u + v*v + w*w"); err != nil {
		fatal(err)
	}
	exprs := make([]string, *distinct)
	for i := range exprs {
		// Distinct programs (different constants) so the cache holds
		// `distinct` entries; each is hot across all clients.
		exprs[i] = fmt.Sprintf("r = sqrt(vmag2) + %d.0 * w", i)
	}

	var failures atomic.Int64
	start := time.Now()
	if *requests > 0 {
		inputs := syntheticInputs(*n)
		fmt.Printf("dfg-serve: %d workers (%s, %s), %d clients, %d requests, %d distinct expressions, n=%d\n",
			*workers, *device, *strat, *clients, *requests, *distinct, *n)
		if *batchWindow > 0 {
			// The expression mix deliberately overlaps — every member shares
			// the sqrt(vmag2) subtree — so merged batches exercise
			// cross-expression CSE, visible as CSE-shared nodes in the report.
			fmt.Printf("dfg-serve: batch forming on: window=%v max=%d\n", *batchWindow, *batchMax)
		}

		var issued atomic.Int64
		var wg sync.WaitGroup
		for c := 0; c < *clients; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := issued.Add(1)
					if i > int64(*requests) {
						return
					}
					req := serve.Request{
						Expr:   exprs[(int(i)+c)%len(exprs)],
						N:      *n,
						Inputs: inputs,
					}
					_, err := pool.Submit(ctx, req)
					// Under chaos, individual failures are expected (retries
					// exhausted, breaker cooling): the client resubmits a
					// bounded number of times and only an exhausted budget
					// counts as a dropped request.
					for a := 0; err != nil && *chaosSeed != 0 && a < *chaosRetries && ctx.Err() == nil; a++ {
						_, err = pool.Submit(ctx, req)
					}
					if err != nil {
						failures.Add(1)
						if ctx.Err() == nil && *chaosSeed == 0 {
							fmt.Fprintf(os.Stderr, "dfg-serve: request %d: %v\n", i, err)
						}
					}
				}
			}()
		}
		wg.Wait()
	} else if *listen == "" {
		fmt.Fprintln(os.Stderr, "dfg-serve: -requests 0 without -listen does nothing")
		os.Exit(2)
	}
	elapsed := time.Since(start)

	// Hold the introspection endpoint up for scrapes, until the linger
	// window elapses or a signal arrives. With no load configured (and
	// no linger bound) serve until interrupted.
	if *listen != "" && ctx.Err() == nil {
		switch {
		case *linger > 0:
			fmt.Printf("dfg-serve: load complete; endpoint up for %v more (^C to stop)\n", *linger)
			select {
			case <-ctx.Done():
			case <-time.After(*linger):
			}
		case *requests == 0:
			fmt.Println("dfg-serve: serving until interrupted (^C to stop)")
			<-ctx.Done()
		}
	}

	// Drain and flush: every accepted request answers, then counters
	// and traces freeze for the final report.
	if err := pool.Close(); err != nil {
		fatal(err)
	}
	if ctx.Err() != nil {
		fmt.Println("\ndfg-serve: interrupted, pool drained")
	}

	st := pool.Stats()
	fmt.Printf("\n%-28s %v\n", "wall time:", elapsed.Round(time.Millisecond))
	if elapsed > 0 && st.Served > 0 {
		fmt.Printf("%-28s %.0f req/s\n", "throughput:", float64(st.Served)/elapsed.Seconds())
	}
	pool.Report(os.Stdout)
	if *chaosSeed != 0 {
		// Soak verdict: every request must land despite the injected
		// faults, and the drained pool must hold zero device buffers.
		dropped := failures.Load()
		leaked := pool.LiveBuffers()
		fmt.Printf("%-28s seed=%d dropped=%d leaked-buffers=%d rerouted=%d rebuilds=%d\n",
			"chaos:", *chaosSeed, dropped, leaked, st.Rerouted, st.Restarts)
		if ctx.Err() == nil && (dropped > 0 || leaked != 0) {
			// Leave a postmortem: the flight ring still holds the final
			// requests' span trees and recent perf records.
			if path := pool.FlightRecorder().Dump("chaos-soak-failure"); path != "" {
				fmt.Fprintf(os.Stderr, "dfg-serve: flight dump written to %s\n", path)
			}
			fmt.Fprintln(os.Stderr, "dfg-serve: chaos soak FAILED")
			os.Exit(1)
		}
	}
	if *perfDir != "" {
		fmt.Printf("%-28s %d records flushed to %s\n", "perf database:",
			pool.PerfRecorder().Recorded(), *perfDir)
	}
	if failures.Load() > 0 && ctx.Err() == nil {
		os.Exit(1)
	}
}

// syntheticInputs builds deterministic u/v/w fields.
func syntheticInputs(n int) map[string][]float32 {
	u := make([]float32, n)
	v := make([]float32, n)
	w := make([]float32, n)
	for i := 0; i < n; i++ {
		u[i] = float32(i%17) * 0.25
		v[i] = float32(i%13) - 6
		w[i] = float32(i%29) * 0.125
	}
	return map[string][]float32{"u": u, "v": v, "w": w}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfg-serve:", err)
	os.Exit(1)
}
