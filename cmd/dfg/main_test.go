package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dfg"
	"dfg/internal/bovio"
	"dfg/internal/mesh"
)

func TestRunPresets(t *testing.T) {
	for _, preset := range []string{"velmag", "vortmag", "qcrit"} {
		if err := run("", preset, "8x8x8", "cpu", "fusion", 1, 64, false, "", "", "", ""); err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
	}
}

func TestRunCustomExpression(t *testing.T) {
	if err := run("a = u*u + 1", "", "4x4x4", "gpu", "staged", 1, 64, true, "", "", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	vtk := filepath.Join(dir, "out.vtk")
	trace := filepath.Join(dir, "trace.json")
	if err := run("", "qcrit", "8x8x8", "cpu", "fusion", 1, 64, false, vtk, trace, "", ""); err != nil {
		t.Fatal(err)
	}
	vb, err := os.ReadFile(vtk)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(vb), "# vtk DataFile") {
		t.Fatal("vtk artifact malformed")
	}
	tb, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(tb), "[{") {
		t.Fatal("trace artifact malformed")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		expr, preset, dims, device, strat string
	}{
		{"", "nope", "8x8x8", "cpu", "fusion"},   // bad preset
		{"", "velmag", "8x8", "cpu", "fusion"},   // bad dims
		{"", "velmag", "8x8x8", "tpu", "fusion"}, // bad device
		{"", "velmag", "8x8x8", "cpu", "warp"},   // bad strategy
		{"a = $", "", "8x8x8", "cpu", "fusion"},  // bad expression
		{"", "velmag", "0x8x8", "cpu", "fusion"}, // zero dim
	}
	for i, c := range cases {
		if err := run(c.expr, c.preset, c.dims, c.device, c.strat, 1, 64, false, "", "", "", ""); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestRunWithBOVData(t *testing.T) {
	dir := t.TempDir()
	// Write a tiny BOV triplet, evaluate Q-criterion on it, and write
	// the derived field back out as BOV.
	d := mesh.Dims{NX: 6, NY: 6, NZ: 6}
	m, _ := dfg.NewUniformMesh(d, 1.0/6, 1.0/6, 1.0/6)
	f := dfg.GenerateRT(m, 3)
	for name, data := range map[string][]float32{"u": f.U, "v": f.V, "w": f.W} {
		h := bovio.Header{Size: d, Variable: name, BrickSize: [3]float32{1, 1, 1}}
		if err := bovio.Write(filepath.Join(dir, name+".bov"), h, data); err != nil {
			t.Fatal(err)
		}
	}
	out := filepath.Join(dir, "q.bov")
	if err := run("", "qcrit", "ignored-when-bov", "cpu", "fusion", 1, 64, false, "", "", dir, out); err != nil {
		t.Fatal(err)
	}
	h, data, err := bovio.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	if h.Size != d || len(data) != d.Cells() {
		t.Fatalf("derived BOV wrong shape: %+v", h)
	}
	// Must match evaluating the same data directly.
	eng, _ := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "fusion", MemScale: 64})
	want, err := eng.EvalOnMesh(dfg.QCriterionExpr, m, dfg.FieldInputs(f))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if data[i] != want.Data[i] {
			t.Fatalf("BOV-path result differs at %d", i)
		}
	}
	// Mismatched bricks fail.
	bad := bovio.Header{Size: mesh.Dims{NX: 2, NY: 2, NZ: 2}, BrickSize: [3]float32{1, 1, 1}}
	bovio.Write(filepath.Join(dir, "w.bov"), bad, make([]float32, 8))
	if err := run("", "qcrit", "x", "cpu", "fusion", 1, 64, false, "", "", dir, ""); err == nil {
		t.Fatal("mismatched bricks must fail")
	}
}
