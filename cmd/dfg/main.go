// Command dfg evaluates a derived-field expression on synthetic
// Rayleigh–Taylor data from the command line.
//
// Usage:
//
//	dfg -preset qcrit -dims 48x48x64 -device gpu -strategy fusion
//	dfg -expr 'v2 = u*u + v*v' -dims 32x32x32 -stats
//
// It prints the device-event profile (the paper's Table II categories),
// the device-memory high-water mark, and summary statistics of the
// derived field.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"dfg"
	"dfg/internal/bovio"
	"dfg/internal/metrics"
	"dfg/internal/ocl"
	"dfg/internal/vtkio"
)

func main() {
	var (
		exprText = flag.String("expr", "", "expression program text (overrides -preset)")
		preset   = flag.String("preset", "velmag", "expression preset: velmag, vortmag or qcrit")
		dims     = flag.String("dims", "48x48x64", "grid dimensions NXxNYxNZ")
		device   = flag.String("device", "cpu", "target device: cpu or gpu")
		strat    = flag.String("strategy", "fusion", "execution strategy: roundtrip, staged, fusion, streaming, vm or tiered[@N]")
		seed     = flag.Int64("seed", 42, "synthetic data seed")
		memScale = flag.Int64("mem-scale", 64, "divide simulated device memory by this factor")
		stats    = flag.Bool("stats", true, "print derived-field statistics")
		vtkOut   = flag.String("vtk", "", "write the mesh and derived field to this VTK legacy file")
		traceOut = flag.String("trace", "", "write the run's device events as Chrome-trace JSON to this file")
		listDevs = flag.Bool("list-devices", false, "list the simulated node's OpenCL platforms and devices (clinfo style) and exit")
		bovIn    = flag.String("bov", "", "load real data: directory containing u.bov, v.bov, w.bov (overrides -dims/-seed)")
		bovOut   = flag.String("bov-out", "", "write the derived field as a BOV data set to this .bov path")
	)
	flag.Parse()

	if *listDevs {
		listDevices(*memScale)
		return
	}

	if err := run(*exprText, *preset, *dims, *device, *strat, *seed, *memScale, *stats, *vtkOut, *traceOut, *bovIn, *bovOut); err != nil {
		fmt.Fprintln(os.Stderr, "dfg:", err)
		os.Exit(1)
	}
}

func run(exprText, preset, dims, device, strat string, seed, memScale int64, stats bool, vtkOut, traceOut, bovIn, bovOut string) error {
	text := exprText
	if text == "" {
		switch preset {
		case "velmag":
			text = dfg.VelocityMagnitudeExpr
		case "vortmag":
			text = dfg.VorticityMagnitudeExpr
		case "qcrit":
			text = dfg.QCriterionExpr
		default:
			return fmt.Errorf("unknown preset %q", preset)
		}
	}

	var d dfg.Dims
	if bovIn == "" {
		if _, err := fmt.Sscanf(dims, "%dx%dx%d", &d.NX, &d.NY, &d.NZ); err != nil {
			return fmt.Errorf("bad -dims %q (want NXxNYxNZ)", dims)
		}
	}
	dev := dfg.CPU
	if device == "gpu" {
		dev = dfg.GPU
	} else if device != "cpu" {
		return fmt.Errorf("bad -device %q", device)
	}

	var (
		m     *dfg.Mesh
		field *dfg.Field
		err   error
	)
	if bovIn != "" {
		m, field, err = loadBOVField(bovIn)
		if err != nil {
			return err
		}
		d = m.Dims
	} else {
		m, err = dfg.NewUniformMesh(d, 1.0/float32(d.NX), 1.0/float32(d.NY), 1.0/float32(d.NZ))
		if err != nil {
			return err
		}
		field = dfg.GenerateRT(m, seed)
	}

	eng, err := dfg.New(dfg.Config{Device: dev, Strategy: strat, MemScale: memScale})
	if err != nil {
		return err
	}
	res, err := eng.EvalOnMesh(text, m, dfg.FieldInputs(field))
	if err != nil {
		return err
	}

	fmt.Printf("device:    %s\n", eng.Device())
	fmt.Printf("strategy:  %s\n", eng.Strategy())
	fmt.Printf("grid:      %v (%d cells)\n", d, d.Cells())
	fmt.Printf("profile:   %s\n", res.Profile)
	fmt.Printf("peak mem:  %d bytes of device global memory\n", res.PeakDeviceBytes)

	if stats {
		min, max := math.Inf(1), math.Inf(-1)
		var sum float64
		for _, v := range res.Data {
			f := float64(v)
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
			sum += f
		}
		fmt.Printf("result:    %d values, min %.6g, max %.6g, mean %.6g\n",
			len(res.Data), min, max, sum/float64(len(res.Data)))
	}

	if vtkOut != "" {
		if res.Width != 1 {
			return fmt.Errorf("-vtk supports scalar results, got width %d", res.Width)
		}
		out, err := os.Create(vtkOut)
		if err != nil {
			return err
		}
		defer out.Close()
		g := vtkio.Grid{Mesh: m, Fields: map[string][]float32{"derived": res.Data}}
		if err := vtkio.Write(out, "dfg derived field", g); err != nil {
			return err
		}
		fmt.Printf("vtk:       wrote %s (load it in VisIt or ParaView)\n", vtkOut)
	}

	if bovOut != "" {
		if res.Width != 1 {
			return fmt.Errorf("-bov-out supports scalar results, got width %d", res.Width)
		}
		h := bovio.Header{
			Size:      d,
			Variable:  "derived",
			Origin:    [3]float32{m.X[0], m.Y[0], m.Z[0]},
			BrickSize: [3]float32{m.X[d.NX] - m.X[0], m.Y[d.NY] - m.Y[0], m.Z[d.NZ] - m.Z[0]},
		}
		if err := bovio.Write(bovOut, h, res.Data); err != nil {
			return err
		}
		fmt.Printf("bov:       wrote %s\n", bovOut)
	}

	if traceOut != "" {
		out, err := os.Create(traceOut)
		return writeTraceFile(out, err, eng.Device(), res.Events)
	}
	return nil
}

// loadBOVField reads u.bov, v.bov and w.bov from a directory and builds
// the mesh from the first header (all three must describe one brick).
func loadBOVField(dir string) (*dfg.Mesh, *dfg.Field, error) {
	var (
		m    *dfg.Mesh
		data [3][]float32
	)
	for i, name := range []string{"u", "v", "w"} {
		h, vals, err := bovio.Read(filepath.Join(dir, name+".bov"))
		if err != nil {
			return nil, nil, err
		}
		bm, err := h.Mesh()
		if err != nil {
			return nil, nil, err
		}
		if m == nil {
			m = bm
		} else if bm.Dims != m.Dims {
			return nil, nil, fmt.Errorf("dfg: %s.bov brick %v does not match %v", name, bm.Dims, m.Dims)
		}
		data[i] = vals
	}
	return m, &dfg.Field{Mesh: m, U: data[0], V: data[1], W: data[2]}, nil
}

// writeTraceFile finishes the -trace flag's work.
func writeTraceFile(out *os.File, err error, device string, events []dfg.Event) error {
	if err != nil {
		return err
	}
	defer out.Close()
	if err := metrics.WriteTrace(out, device, events); err != nil {
		return err
	}
	fmt.Printf("trace:     wrote %s (open in chrome://tracing or Perfetto)\n", out.Name())
	return nil
}

// listDevices prints the simulated Edge node's platforms and devices in
// the familiar clinfo layout.
func listDevices(memScale int64) {
	for _, p := range ocl.EdgeNodePlatforms(memScale) {
		fmt.Printf("Platform Name     %s\n", p.Name)
		fmt.Printf("Platform Vendor   %s\n", p.Vendor)
		fmt.Printf("Platform Version  %s\n", p.Version)
		for i, d := range p.Devices {
			s := d.Spec()
			fmt.Printf("  Device #%d\n", i)
			fmt.Printf("    Name             %s\n", s.Name)
			fmt.Printf("    Type             %s\n", s.Type)
			fmt.Printf("    Compute Units    %d\n", s.ComputeUnits)
			fmt.Printf("    Clock            %d MHz\n", s.ClockMHz)
			fmt.Printf("    Global Memory    %d MiB\n", s.GlobalMemSize>>20)
			fmt.Printf("    Max Allocation   %d MiB\n", s.MaxAllocSize>>20)
		}
		fmt.Println()
	}
}
