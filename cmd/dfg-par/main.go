// Command dfg-par reproduces the paper's distributed-memory parallel
// demonstration (Section V-C): the full RT time step, decomposed into
// 3072 sub-grids, processed with the fusion strategy by 256 MPI tasks
// on 128 simulated nodes with two GPUs each — at a reduced cell count
// per block (-scale) so it runs on one machine.
//
//	dfg-par                   # paper structure at 1/16 linear scale
//	dfg-par -verify           # also check the result is seam-free
//	dfg-par -ranks 64 -scale 32
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"dfg"
	"dfg/internal/mesh"
	"dfg/internal/par"
	"dfg/internal/render"
	"dfg/internal/rtsim"
)

func main() {
	var (
		scale    = flag.Int("scale", 16, "divide the 3072^3 domain's dimensions by this factor")
		ranks    = flag.Int("ranks", 256, "number of simulated MPI tasks")
		gpus     = flag.Int("gpus-per-node", 2, "GPUs (and tasks) per node")
		seed     = flag.Int64("seed", 42, "synthetic data seed")
		verify   = flag.Bool("verify", false, "verify the assembled field against a single-grid computation")
		strategy = flag.String("strategy", "fusion", "execution strategy for the blocks")
		ppmOut   = flag.String("ppm", "", "write a pseudo-color mid-height slice of the result (the Figure 7 rendering) to this PPM file")
		rankTbl  = flag.Bool("ranks-table", false, "print the per-rank accounting table")
	)
	flag.Parse()

	domain, parts := rtsim.FullTimeStep(*scale)
	cfg := par.Config{
		Domain:      domain,
		Parts:       parts,
		Ranks:       *ranks,
		GPUsPerNode: *gpus,
		Ghost:       1,
		Expression:  dfg.QCriterionExpr,
		Strategy:    *strategy,
		MemScale:    int64(*scale) * int64(*scale) * int64(*scale),
		Seed:        *seed,
	}

	fmt.Printf("domain:  %v (%d cells), %d sub-grids of %v\n",
		domain, domain.Cells(), parts[0]*parts[1]*parts[2], subDims(domain, parts))
	fmt.Printf("ranks:   %d MPI tasks on %d nodes (%d GPUs/node)\n",
		cfg.Ranks, (cfg.Ranks+cfg.GPUsPerNode-1)/cfg.GPUsPerNode, cfg.GPUsPerNode)

	start := time.Now()
	rep, err := par.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfg-par:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	blocksMin, blocksMax := rep.Ranks[0].Blocks, rep.Ranks[0].Blocks
	var kernels int
	var peak int64
	for _, r := range rep.Ranks {
		if r.Blocks < blocksMin {
			blocksMin = r.Blocks
		}
		if r.Blocks > blocksMax {
			blocksMax = r.Blocks
		}
		kernels += r.Profile.Kernels
		if r.PeakBytes > peak {
			peak = r.PeakBytes
		}
	}
	fmt.Printf("done:    %d blocks in %v (%d-%d blocks/rank, %d fused kernels, max %d B device memory)\n",
		rep.Blocks, elapsed, blocksMin, blocksMax, kernels, peak)

	pos := 0
	for _, v := range rep.Output {
		if v > 0 {
			pos++
		}
	}
	fmt.Printf("q-crit:  %d of %d cells vortical (Q > 0)\n", pos, len(rep.Output))
	fmt.Printf("balance: busiest rank at %.3fx the mean device time\n", rep.Imbalance())

	if *rankTbl {
		fmt.Println()
		fmt.Print(rep.Table().Text())
	}

	if *ppmOut != "" {
		plane, w, h, err := render.Slice(rep.Output, domain, render.Z, domain.NZ/2)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfg-par:", err)
			os.Exit(1)
		}
		f, err := os.Create(*ppmOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfg-par:", err)
			os.Exit(1)
		}
		if err := render.WritePPM(f, plane, w, h); err != nil {
			fmt.Fprintln(os.Stderr, "dfg-par:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("render:  wrote %s (%dx%d pseudo-color Q-criterion slice)\n", *ppmOut, w, h)
	}

	if *verify {
		golden, _, err := par.GoldenField(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dfg-par:", err)
			os.Exit(1)
		}
		var maxDiff float64
		for i := range golden {
			if d := math.Abs(float64(rep.Output[i] - golden[i])); d > maxDiff {
				maxDiff = d
			}
		}
		fmt.Printf("verify:  max |distributed - single-grid| = %g (seam-free)\n", maxDiff)
		if maxDiff > 1e-4 {
			fmt.Fprintln(os.Stderr, "dfg-par: VERIFICATION FAILED")
			os.Exit(1)
		}
	}
}

func subDims(domain mesh.Dims, parts [3]int) mesh.Dims {
	return mesh.Dims{NX: domain.NX / parts[0], NY: domain.NY / parts[1], NZ: domain.NZ / parts[2]}
}
