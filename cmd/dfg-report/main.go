// Command dfg-report is the perf-database regression gate: it loads two
// perf snapshots, aggregates them per (expression, strategy, opt level,
// size bucket), compares new against base, prints a markdown summary,
// and exits non-zero when the comparison regresses.
//
//	dfg-report -base results/perf_baseline.json -new perf/latest.json
//	dfg-report -base old.jsonl -new new.jsonl -tol 0.10 -v
//	dfg-report -base base.json -new new.json -time-warn   # CI cross-machine mode
//	dfg-report -check-flight perf/flight-*.json           # validate a postmortem dump
//
// Both inputs may be any persisted perf format — a perfdb JSONL snapshot
// (what serve.Pool.FlushPerf and dfg-serve -perf-dir write), dfg-bench
// sweep JSON (-json), or dfg-bench warm/cold JSON (-repeat -json); the
// format is sniffed per file, so a live snapshot can be gated against a
// committed baseline produced by a different tool.
//
// Wall-time comparisons use minimum-of-samples against a fractional
// tolerance with an absolute noise floor; count metrics (kernel
// launches, device writes, warm-path allocations, ...) compare against
// an absolute tolerance that defaults to zero — one extra warm-path
// allocation fails the gate. -time-warn downgrades time regressions to
// warnings for cross-machine CI baselines while counts keep hard-failing.
package main

import (
	"flag"
	"fmt"
	"os"

	"dfg/internal/perfdb"
)

func main() {
	var (
		base        = flag.String("base", "", "baseline snapshot (perfdb JSONL or dfg-bench JSON)")
		newer       = flag.String("new", "", "candidate snapshot to gate against the baseline")
		tol         = flag.Float64("tol", 0, "fractional wall-time tolerance (0 = default 0.25)")
		floor       = flag.Int64("floor-ns", 0, "ignore time regressions when both sides are under this many ns (0 = default 100000)")
		countTol    = flag.Float64("count-tol", 0, "absolute tolerance on count metrics (default 0: +1 alloc fails)")
		timeWarn    = flag.Bool("time-warn", false, "downgrade time regressions to warnings (counts still hard-fail)")
		verbose     = flag.Bool("v", false, "list every compared metric, not just regressions and warnings")
		checkFlight = flag.String("check-flight", "", "validate a flight-recorder dump instead of comparing snapshots")
	)
	flag.Parse()

	if *checkFlight != "" {
		checkFlightDump(*checkFlight)
		return
	}
	if *base == "" || *newer == "" {
		flag.Usage()
		os.Exit(2)
	}

	baseSamples, baseMeta, err := perfdb.LoadAny(*base)
	if err != nil {
		fatal(err)
	}
	newSamples, newMeta, err := perfdb.LoadAny(*newer)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("base: %s  (%d samples%s)\n", *base, len(baseSamples), describe(baseMeta))
	fmt.Printf("new:  %s  (%d samples%s)\n\n", *newer, len(newSamples), describe(newMeta))

	v := perfdb.Compare(
		perfdb.Aggregate(baseSamples),
		perfdb.Aggregate(newSamples),
		perfdb.CompareOptions{
			TimeTol:      *tol,
			MinTimeNS:    *floor,
			CountTol:     *countTol,
			TimeWarnOnly: *timeWarn,
		},
	)
	fmt.Print(v.Markdown(*verbose))
	if !v.OK() {
		fmt.Fprintf(os.Stderr, "dfg-report: %d regression(s)\n", len(v.Regressions()))
		os.Exit(1)
	}
	fmt.Println("verdict: OK")
}

// describe renders the identity a snapshot's meta carries, if any.
func describe(m perfdb.Meta) string {
	if m.GitRev == "" && m.Host == "" && m.GoVersion == "" {
		return ""
	}
	s := ""
	if m.GitRev != "" {
		s += ", rev " + m.GitRev
	}
	if m.GoVersion != "" {
		s += ", " + m.GoVersion
	}
	if m.Host != "" {
		s += ", host " + m.Host
	}
	return s
}

// checkFlightDump loads a flight-recorder dump and verifies it is
// structurally sound: parseable, schema-matched, and — when any entry
// failed — carrying the failing request's span tree. CI's chaos job uses
// this to assert a breaker trip produced a usable postmortem.
func checkFlightDump(path string) {
	d, err := perfdb.LoadFlight(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("flight dump %s: reason %q, %d entries, %d recent records, rev %s\n",
		path, d.Reason, len(d.Entries), len(d.Recent), orDash(d.Meta.GitRev))
	errs := d.EntryErrs()
	fmt.Printf("failed entries: %d\n", len(errs))
	for _, e := range errs {
		span := "no span"
		if e.Span != nil {
			span = "span retained"
		}
		fmt.Printf("  worker %d trace %s: %s (%s)\n", e.Worker, orDash(e.TraceID), e.Err, span)
	}
	if len(d.Entries) == 0 {
		fatal(fmt.Errorf("%s: dump has no entries", path))
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfg-report:", err)
	os.Exit(1)
}
