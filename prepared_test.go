package dfg_test

import (
	"sync"
	"testing"

	"dfg"
	"dfg/internal/compile"
)

// TestPreparedWarmEvalReusesEverything: Prepare once, Eval repeatedly —
// the warm evals must allocate no fresh device buffers, skip re-uploads
// of unchanged sources, and reproduce the cold output bitwise. Close
// must drain the arena back to the pre-Prepare level.
func TestPreparedWarmEvalReusesEverything(t *testing.T) {
	eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4096
	inputs := evalInputs(n)

	pr, err := eng.Prepare("m = sqrt(u*u + v*v + w*w)")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := pr.Eval(n, inputs)
	if err != nil {
		t.Fatal(err)
	}
	afterCold := eng.ArenaStats()
	if afterCold.Allocated == 0 {
		t.Fatal("cold eval allocated nothing through the arena")
	}

	for i := 0; i < 3; i++ {
		warm, err := pr.Eval(n, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Profile.Writes != 0 {
			t.Fatalf("warm eval %d uploaded %d sources, want 0 (resident)", i, warm.Profile.Writes)
		}
		for j := range cold.Data {
			if cold.Data[j] != warm.Data[j] {
				t.Fatalf("warm eval %d diverged at element %d", i, j)
			}
		}
	}
	afterWarm := eng.ArenaStats()
	if afterWarm.Allocated != afterCold.Allocated {
		t.Fatalf("warm evals allocated %d fresh buffers", afterWarm.Allocated-afterCold.Allocated)
	}
	if afterWarm.UploadsSkipped == 0 {
		t.Fatal("warm evals skipped no uploads")
	}

	pr.Close()
	st := eng.ArenaStats()
	if st.PooledBytes != 0 || st.ResidentBytes != 0 || st.Resident != 0 {
		t.Fatalf("Close left arena non-empty: %+v", st)
	}
	pr.Close() // idempotent

	if _, err := pr.Eval(n, inputs); err == nil {
		t.Fatal("Eval on a closed Prepared succeeded")
	}
}

// TestOneShotEvalStaysCold: plain Engine.Eval must not touch the arena —
// the paper's per-run allocate/free semantics (Table II event counts,
// Figure 6 memory profile) stay exact on the one-shot path.
func TestOneShotEvalStaysCold(t *testing.T) {
	eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "staged"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024
	inputs := evalInputs(n)
	for i := 0; i < 3; i++ {
		if _, err := eng.Eval("m = u + v*w", n, inputs); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.ArenaStats()
	if st.Allocated != 0 || st.Reused != 0 || st.Uploads != 0 {
		t.Fatalf("one-shot Eval went through the arena: %+v", st)
	}
}

// TestPreparedSharedCompiler: engines sharing one compiler share plans —
// the plan is built once for the pool — and concurrent Prepare+Eval
// across engines is race-free (run under -race in CI).
func TestPreparedSharedCompiler(t *testing.T) {
	comp := compile.NewCompiler()
	const workers = 4
	engines := make([]*dfg.Engine, workers)
	for i := range engines {
		dev, err := dfg.NewDeviceFor(dfg.Config{Device: dfg.CPU})
		if err != nil {
			t.Fatal(err)
		}
		engines[i], err = dfg.NewWith(dev, "fusion", comp)
		if err != nil {
			t.Fatal(err)
		}
	}

	const n = 2048
	inputs := evalInputs(n)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i, eng := range engines {
		wg.Add(1)
		go func(i int, eng *dfg.Engine) {
			defer wg.Done()
			pr, err := eng.Prepare("m = sqrt(u*u + v*v + w*w)")
			if err != nil {
				errs[i] = err
				return
			}
			defer pr.Close()
			for j := 0; j < 3; j++ {
				if _, err := pr.Eval(n, inputs); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, eng)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
	}

	st := comp.Stats()
	if st.PlanBuilds != 1 {
		t.Fatalf("plan built %d times for one (expr, strategy, device class), want 1", st.PlanBuilds)
	}
	if st.PlanEntries != 1 {
		t.Fatalf("plan cache holds %d entries, want 1", st.PlanEntries)
	}
}

// TestPreparedRedefineInvalidates: redefining a referenced name changes
// the fingerprint, so a fresh Prepare picks up the new definition while
// an existing handle keeps evaluating its original plan.
func TestPreparedRedefineInvalidates(t *testing.T) {
	eng, err := dfg.New(dfg.Config{Device: dfg.CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Define("speed", "sqrt(u*u + v*v + w*w)"); err != nil {
		t.Fatal(err)
	}
	const n = 512
	inputs := evalInputs(n)

	pr1, err := eng.Prepare("m = speed")
	if err != nil {
		t.Fatal(err)
	}
	defer pr1.Close()
	res1, err := pr1.Eval(n, inputs)
	if err != nil {
		t.Fatal(err)
	}

	if err := eng.Define("speed", "u + v + w"); err != nil {
		t.Fatal(err)
	}
	if eng.Fingerprint("m = speed") == pr1.Fingerprint() {
		t.Fatal("redefinition did not change the fingerprint")
	}
	pr2, err := eng.Prepare("m = speed")
	if err != nil {
		t.Fatal(err)
	}
	defer pr2.Close()
	res2, err := pr2.Eval(n, inputs)
	if err != nil {
		t.Fatal(err)
	}

	same := true
	for i := range res1.Data {
		if res1.Data[i] != res2.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("prepared plan did not pick up the redefinition")
	}
}
