package dfg

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"dfg/internal/obs"
	"dfg/internal/ocl"
	"dfg/internal/vortex"
)

// tinyGPU builds an engine on the paper's Tesla M2050 spec with its
// global memory shrunk to capacity bytes, recovery armed, and an
// instrumented registry. The 3 GB M2050 is exactly the device whose
// missing Table II entries motivated the ladder; shrinking its memory
// reproduces those failures at test scale.
func tinyGPU(t *testing.T, capacity int64, pol *RetryPolicy) (*Engine, *obs.Registry) {
	t.Helper()
	spec := ocl.TeslaM2050Spec(1)
	spec.GlobalMemSize = capacity
	spec.MaxAllocSize = capacity
	eng, err := NewWith(ocl.NewDevice(spec), "fusion", nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng.Instrument(nil, reg)
	if pol == nil {
		pol = DefaultRetryPolicy()
	}
	if pol.Sleep == nil {
		pol.Sleep = func(time.Duration) {} // tests never really sleep
	}
	if err := eng.SetRecovery(pol); err != nil {
		t.Fatal(err)
	}
	return eng, reg
}

// TestOOMUnderFusionRecoversViaLadder is the flagship scenario: on a
// memory-starved M2050 spec, Q-criterion OOMs under fusion (and under
// staged and roundtrip — the paper's failed GPU cases), and the
// degradation ladder lands on a streaming rung that completes. The
// recovered result must agree to zero ULP with the same evaluation on
// a capacious reference device, dfg_fallback_total must record the
// ladder walk, and closing the handle must return the device to its
// baseline live-buffer count.
func TestOOMUnderFusionRecoversViaLadder(t *testing.T) {
	m, err := NewUniformMesh(Dims{NX: 16, NY: 16, NZ: 32}, 1.0/16, 1.0/16, 1.0/32)
	if err != nil {
		t.Fatal(err)
	}
	f := GenerateRT(m, 17)
	n := m.Cells()

	// Capacity below every whole-grid strategy's working set (7 scalar
	// arrays at 4 B/cell already exceed it) but above a small tile's.
	eng, reg := tinyGPU(t, 9*int64(n), nil)
	baseline := eng.LiveBuffers()

	// Fail-fast sanity: without recovery this is the paper's terminal
	// OOM.
	plain, err := NewWith(eng.env.Device(), "fusion", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.EvalOnMesh(QCriterionExpr, m, FieldInputs(f)); !errors.Is(err, ocl.ErrOutOfDeviceMemory) && !errors.Is(err, ocl.ErrAllocTooLarge) {
		t.Fatalf("memory-starved fusion without recovery: got %v, want capacity fault", err)
	}

	ref, err := New(Config{Device: CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.EvalOnMesh(QCriterionExpr, m, FieldInputs(f))
	if err != nil {
		t.Fatal(err)
	}

	pr, err := eng.Prepare(QCriterionExpr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pr.EvalMesh(m, FieldInputs(f))
	if err != nil {
		t.Fatalf("ladder did not recover the paper's failed GPU case: %v", err)
	}
	deg := pr.Degraded()
	if len(deg) < len("streaming@") || deg[:len("streaming@")] != "streaming@" {
		t.Fatalf("expected to land on a streaming rung, landed on %q", deg)
	}
	// Zero-ULP agreement with the reference evaluation (streaming is
	// bitwise-identical to fusion, so the ladder loses nothing).
	for i := range want.Data {
		if math.Float32bits(res.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("cell %d: recovered %v != reference %v (non-zero ULP)", i, res.Data[i], want.Data[i])
		}
	}
	// The ladder's walk is visible in dfg_fallback_total: fusion ->
	// staged -> roundtrip -> streaming@4 -> ... -> the landing rung.
	firstEdge := reg.Counter("dfg_fallback_total", "", obs.Labels{"from": "fusion", "to": "staged"}).Value()
	if firstEdge < 1 {
		t.Fatal("dfg_fallback_total{from=fusion,to=staged} was not incremented")
	}
	lastEdge := reg.Counter("dfg_fallback_total", "", obs.Labels{"from": "roundtrip", "to": "streaming@4"}).Value()
	if lastEdge < 1 {
		t.Fatal("dfg_fallback_total{from=roundtrip,to=streaming@4} was not incremented")
	}

	// Warm re-evaluation starts at the parked rung: no new fallbacks.
	before := firstEdge
	res2, err := pr.EvalMesh(m, FieldInputs(f))
	if err != nil {
		t.Fatalf("warm degraded eval: %v", err)
	}
	for i := range want.Data {
		if math.Float32bits(res2.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("warm cell %d differs", i)
		}
	}
	if after := reg.Counter("dfg_fallback_total", "", obs.Labels{"from": "fusion", "to": "staged"}).Value(); after != before {
		t.Fatalf("warm eval re-walked the ladder: fallback count %d -> %d", before, after)
	}

	pr.Close()
	if got := eng.LiveBuffers(); got != baseline {
		t.Fatalf("after Close: %d live buffers, want baseline %d", got, baseline)
	}
	if used := eng.env.Context().Used(); used != 0 {
		t.Fatalf("after Close: %d bytes still allocated", used)
	}
}

// TestTransientRetrySucceeds pins the retry path: a one-shot injected
// kernel failure is retried with backoff and the evaluation succeeds,
// incrementing dfg_retries_total.
func TestTransientRetrySucceeds(t *testing.T) {
	var slept []time.Duration
	pol := DefaultRetryPolicy()
	pol.Sleep = func(d time.Duration) { slept = append(slept, d) }
	eng, reg := tinyGPU(t, 1<<30, pol)

	eng.InjectFaults(ocl.NewFaultPlan(1).FailNth(ocl.FaultKernel, 0))
	u := []float32{3, 1, 0}
	v := []float32{4, 2, 0}
	w := []float32{0, 2, 5}
	res, err := eng.Eval(VelocityMagnitudeExpr, 3, map[string][]float32{"u": u, "v": v, "w": w})
	if err != nil {
		t.Fatalf("retry did not recover a one-shot kernel fault: %v", err)
	}
	if math.Abs(float64(res.Data[0])-5) > 1e-6 {
		t.Fatalf("v_mag[0] = %v want 5", res.Data[0])
	}
	if got := reg.Counter("dfg_retries_total", "", obs.Labels{"strategy": "fusion"}).Value(); got != 1 {
		t.Fatalf("dfg_retries_total = %d, want 1", got)
	}
	if len(slept) != 1 {
		t.Fatalf("expected exactly one backoff sleep, got %v", slept)
	}
	if slept[0] <= 0 || slept[0] > 2*pol.BaseBackoff {
		t.Fatalf("first backoff %v outside (0, 2*base]", slept[0])
	}
}

// TestRetriesExhaust pins the budget: persistent transient faults
// surface the typed error once MaxRetries is spent.
func TestRetriesExhaust(t *testing.T) {
	pol := DefaultRetryPolicy()
	pol.MaxRetries = 2
	eng, _ := tinyGPU(t, 1<<30, pol)
	eng.InjectFaults(ocl.NewFaultPlan(1).Add(ocl.FaultRule{Op: ocl.FaultKernel, Nth: 0, Times: 100}))

	_, err := eng.Eval(VelocityMagnitudeExpr, 1, map[string][]float32{"u": {1}, "v": {0}, "w": {0}})
	if !errors.Is(err, ocl.ErrKernelFailed) {
		t.Fatalf("got %v, want wrapped ErrKernelFailed", err)
	}
	if eng.LiveBuffers() != 0 {
		t.Fatalf("exhausted retries leaked %d buffers", eng.LiveBuffers())
	}
}

// TestDeviceLostSurfacesWithoutVMRung pins that engine recovery never
// retries or backs off on a lost device: with no host-VM rung on the
// ladder there is nowhere to go, so the loss surfaces immediately —
// healing the device is the serving layer's job.
func TestDeviceLostSurfacesWithoutVMRung(t *testing.T) {
	var slept int
	pol := DefaultRetryPolicy()
	pol.Ladder = []string{"fusion", "staged"} // no vm refuge
	pol.Sleep = func(time.Duration) { slept++ }
	eng, _ := tinyGPU(t, 1<<30, pol)
	eng.InjectFaults(ocl.NewFaultPlan(1).LoseDeviceAt(0))

	_, err := eng.Eval(VelocityMagnitudeExpr, 1, map[string][]float32{"u": {1}, "v": {0}, "w": {0}})
	if !errors.Is(err, ocl.ErrDeviceLost) {
		t.Fatalf("got %v, want ErrDeviceLost", err)
	}
	if slept != 0 {
		t.Fatal("device-lost fault must not back off and retry")
	}
	if !eng.DeviceLost() {
		t.Fatal("device should be latched lost")
	}
}

// TestDeviceLostFallsToVM is the fault-ladder regression for the VM
// rung: under a latching device-lost fault, the default ladder jumps
// straight to the host VM, completes with the correct output, reports
// the degradation, and keeps serving warm evaluations on the VM while
// the device stays lost.
func TestDeviceLostFallsToVM(t *testing.T) {
	var slept int
	pol := DefaultRetryPolicy()
	pol.Sleep = func(time.Duration) { slept++ }
	eng, reg := tinyGPU(t, 1<<30, pol)
	eng.InjectFaults(ocl.NewFaultPlan(1).LoseDeviceAt(0))

	pr, err := eng.Prepare(VelocityMagnitudeExpr)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	in := map[string][]float32{"u": {3, 1, 0}, "v": {4, 2, 0}, "w": {0, 2, 5}}
	res, err := pr.Eval(3, in)
	if err != nil {
		t.Fatalf("vm rung did not rescue the lost device: %v", err)
	}
	if math.Abs(float64(res.Data[0])-5) > 1e-6 || math.Abs(float64(res.Data[1])-3) > 1e-6 || math.Abs(float64(res.Data[2])-5) > 1e-6 {
		t.Fatalf("vm result wrong: %v", res.Data)
	}
	if res.Profile.Kernels != 0 || res.Profile.Writes != 0 || res.Profile.Reads != 0 {
		t.Fatalf("rescued run touched the lost device: %+v", res.Profile)
	}
	if slept != 0 {
		t.Fatal("device loss must jump to the vm rung without backoff sleeps")
	}
	if got := pr.Degraded(); got != "vm" {
		t.Fatalf("Degraded() = %q, want vm", got)
	}
	if !eng.DeviceLost() {
		t.Fatal("device must stay latched lost — the vm rescue does not heal it")
	}
	if got := reg.Counter("dfg_fallback_total", "", obs.Labels{"from": "fusion", "to": "vm"}).Value(); got != 1 {
		t.Fatalf("dfg_fallback_total{fusion->vm} = %d, want 1", got)
	}

	// Warm evaluation starts on the parked vm rung: no second fallback.
	if _, err := pr.Eval(3, in); err != nil {
		t.Fatalf("warm vm eval: %v", err)
	}
	if got := reg.Counter("dfg_fallback_total", "", obs.Labels{"from": "fusion", "to": "vm"}).Value(); got != 1 {
		t.Fatalf("warm eval re-fell: fallback count %d", got)
	}
}

// TestHealRestoresPrimaryAfterVMRescue: a device-lost degradation is
// not a property of the plan — once the device heals, the prepared
// expression returns to its primary rung, and the next evaluation
// really runs on the device again.
func TestHealRestoresPrimaryAfterVMRescue(t *testing.T) {
	eng, _ := tinyGPU(t, 1<<30, nil)
	eng.InjectFaults(ocl.NewFaultPlan(1).LoseDeviceAt(0))

	pr, err := eng.Prepare(VelocityMagnitudeExpr)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	in := map[string][]float32{"u": {3, 1, 0}, "v": {4, 2, 0}, "w": {0, 2, 5}}
	if _, err := pr.Eval(3, in); err != nil {
		t.Fatal(err)
	}
	if got := pr.Degraded(); got != "vm" {
		t.Fatalf("Degraded() = %q, want vm", got)
	}

	eng.InjectFaults(nil)
	eng.Heal()
	if got := pr.Degraded(); got != "" {
		t.Fatalf("Degraded() after Heal = %q, want \"\"", got)
	}
	res, err := pr.Eval(3, in)
	if err != nil {
		t.Fatalf("post-heal eval: %v", err)
	}
	if res.Profile.Kernels == 0 {
		t.Fatal("post-heal eval launched no kernels — still on the vm rung")
	}
	if math.Abs(float64(res.Data[0])-5) > 1e-6 {
		t.Fatalf("post-heal v_mag[0] = %v want 5", res.Data[0])
	}
}

// TestCanceledContextStopsRecovery pins that a done context halts the
// recovery loop instead of burning retries on a request nobody wants.
func TestCanceledContextStopsRecovery(t *testing.T) {
	var slept int
	pol := DefaultRetryPolicy()
	pol.Sleep = func(time.Duration) { slept++ }
	eng, _ := tinyGPU(t, 1<<30, pol)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.EvalCtx(ctx, VelocityMagnitudeExpr, 1, map[string][]float32{"u": {1}, "v": {0}, "w": {0}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if slept != 0 {
		t.Fatal("canceled request must not retry")
	}
}

// TestPreparedCloseIdempotent is the satellite regression: double (and
// concurrent-with-nothing repeated) Close must surrender the prepCount
// reference exactly once and never double-drain someone else's arena.
func TestPreparedCloseIdempotent(t *testing.T) {
	eng, err := New(Config{Device: CPU, Strategy: "fusion"})
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Prepare(VelocityMagnitudeExpr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Prepare(QCriterionExpr)
	if err != nil {
		t.Fatal(err)
	}
	if eng.prepCount != 2 {
		t.Fatalf("prepCount = %d, want 2", eng.prepCount)
	}
	a.Close()
	a.Close() // double-Close: must be a no-op
	a.Close()
	if eng.prepCount != 1 {
		t.Fatalf("prepCount after triple-Close of one handle = %d, want 1", eng.prepCount)
	}
	if _, err := a.Eval(3, map[string][]float32{"u": {3, 1, 0}, "v": {4, 2, 0}, "w": {0, 2, 5}}); err == nil {
		t.Fatal("Eval on closed Prepared must fail")
	}
	b.Close()
	b.Close()
	if eng.prepCount != 0 {
		t.Fatalf("prepCount = %d, want 0", eng.prepCount)
	}
	// Arena Drain idempotence: extra drains on an already-drained arena
	// are no-ops.
	pool := eng.env.Context().Pool()
	pool.Drain()
	pool.Drain()
	if got := eng.LiveBuffers(); got != 0 {
		t.Fatalf("%d live buffers after drains", got)
	}
}

// TestLadderDrainsOnEveryFailure sweeps injected alloc failures across
// the ladder walk and asserts the arena is back at baseline whether or
// not the walk succeeds — the "always drains back to baseline on every
// error path" guarantee.
func TestLadderDrainsOnEveryFailure(t *testing.T) {
	m, err := NewUniformMesh(Dims{NX: 8, NY: 8, NZ: 16}, 1.0/8, 1.0/8, 1.0/16)
	if err != nil {
		t.Fatal(err)
	}
	f := GenerateRT(m, 17)
	n := m.Cells()

	for k := 0; k < 40; k++ {
		eng, _ := tinyGPU(t, 9*int64(n), nil)
		// On top of the capacity starvation, fail the k-th allocation
		// outright, moving the failure point across the whole walk.
		eng.InjectFaults(ocl.NewFaultPlan(int64(k)).FailNth(ocl.FaultAlloc, k))
		pr, err := eng.Prepare(QCriterionExpr)
		if err != nil {
			t.Fatal(err)
		}
		_, evalErr := pr.EvalMesh(m, FieldInputs(f))
		pr.Close()
		if got := eng.LiveBuffers(); got != 0 {
			t.Fatalf("k=%d (err=%v): %d live buffers after Close, want 0", k, evalErr, got)
		}
		if used := eng.env.Context().Used(); used != 0 {
			t.Fatalf("k=%d: %d bytes still allocated", k, used)
		}
	}
}

// TestQCritAgainstHostGolden keeps the recovered result honest against
// the pure-host physics reference within the established cross-
// implementation tolerance.
func TestRecoveredMatchesHostGolden(t *testing.T) {
	m, err := NewUniformMesh(Dims{NX: 16, NY: 16, NZ: 32}, 1.0/16, 1.0/16, 1.0/32)
	if err != nil {
		t.Fatal(err)
	}
	f := GenerateRT(m, 17)
	golden := vortex.QCriterion(f.U, f.V, f.W, m)

	eng, _ := tinyGPU(t, 9*int64(m.Cells()), nil)
	res, err := eng.EvalOnMesh(QCriterionExpr, m, FieldInputs(f))
	if err != nil {
		t.Fatal(err)
	}
	for i := range golden {
		if d := math.Abs(float64(res.Data[i] - golden[i])); d > 0.5 {
			t.Fatalf("cell %d: recovered %v vs host golden %v (|d|=%v)", i, res.Data[i], golden[i], d)
		}
	}
}
